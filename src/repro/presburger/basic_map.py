"""Basic maps: affine relations between two tuples."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

from . import memo
from .basic_set import BasicSet
from .constraint import Constraint
from .linexpr import LinExpr
from .space import MapSpace, SetSpace, fresh_names

_APPLY_MEMO = memo.table("apply_range", spillable=True)
_INTERSECT_MEMO = memo.table("map_intersect")
_REVERSE_MEMO = memo.table("map_reverse")
_RENAME_MEMO = memo.table("map_rename")
_SPECIALIZE_MEMO = memo.table("map_specialize", spillable=True)


class BasicMap:
    """An integer relation ``{ in[dims] -> out[dims] : constraints }``."""

    __slots__ = ("space", "constraints")

    def __init__(self, space: MapSpace, constraints: Iterable[Constraint] = ()):
        constraints = tuple(c for c in constraints if not c.is_trivially_true())
        allowed = set(space.in_dims) | set(space.out_dims) | set(space.params)
        for c in constraints:
            bad = [s for s in c.expr.symbols() if s not in allowed]
            if bad:
                raise ValueError(f"constraint {c} mentions {bad} outside {space}")
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "constraints", constraints)

    @classmethod
    def _make(cls, space: MapSpace, constraints: tuple) -> "BasicMap":
        """Fast constructor for constraints already validated against
        ``space`` and already filtered of trivially-true members."""
        self = object.__new__(cls)
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "constraints", constraints)
        return self

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("BasicMap is immutable")

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            object.__setattr__(self, slot, value)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def universe(space: MapSpace) -> "BasicMap":
        return BasicMap(space, ())

    @staticmethod
    def from_exprs(
        in_name: str,
        in_dims: Sequence[str],
        out_name: str,
        out_exprs: Sequence[LinExpr],
        params: Sequence[str] = (),
        out_dims: Optional[Sequence[str]] = None,
        domain: Optional[BasicSet] = None,
    ) -> "BasicMap":
        """Build the graph of an affine function ``in -> (e_0, ..., e_k)``."""
        if out_dims is None:
            out_dims = fresh_names(
                [f"o{i}" for i in range(len(out_exprs))],
                list(in_dims) + list(params),
            )
        space = MapSpace(in_name, tuple(in_dims), out_name, tuple(out_dims), tuple(params))
        cons: List[Constraint] = [
            Constraint.eq(LinExpr.var(od) - e) for od, e in zip(out_dims, out_exprs)
        ]
        if domain is not None:
            if tuple(domain.space.dims) != tuple(in_dims):
                raise ValueError("domain dims must match in_dims")
            cons.extend(domain.constraints)
        return BasicMap(space, cons)

    # -- conversions -------------------------------------------------------

    def wrap(self) -> BasicSet:
        """View the relation as a set over in_dims + out_dims."""
        # The wrapped space carries exactly the map's symbols, so the
        # constraints are valid by construction.
        return BasicSet._make(
            SetSpace(
                f"{self.space.in_name}->{self.space.out_name}",
                self.space.in_dims + self.space.out_dims,
                self.space.params,
            ),
            self.constraints,
        )

    # -- queries -----------------------------------------------------------

    def is_empty(self) -> bool:
        return self.wrap().is_empty()

    def is_subset(self, other: "BasicMap") -> bool:
        return self.wrap().is_subset(other.wrap())

    # -- algebra -----------------------------------------------------------

    def reverse(self) -> "BasicMap":
        key = (self.space, self.constraints)
        cached = _REVERSE_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        # Same symbols, already filtered: the fast constructor applies.
        result = BasicMap._make(self.space.reversed(), self.constraints)
        return _REVERSE_MEMO.put(key, result)

    def intersect(self, other: "BasicMap") -> "BasicMap":
        if self.space != other.space:
            raise ValueError(f"space mismatch: {self.space} vs {other.space}")
        key = (self.space, self.constraints, other.constraints)
        cached = _INTERSECT_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        result = BasicMap._make(self.space, self.constraints + other.constraints)
        return _INTERSECT_MEMO.put(key, result)

    def intersect_domain(self, dom: BasicSet) -> "BasicMap":
        aligned = _align_set_dims(dom, self.space.in_dims)
        return BasicMap(self.space, self.constraints + aligned.constraints)

    def intersect_range(self, rng: BasicSet) -> "BasicMap":
        aligned = _align_set_dims(rng, self.space.out_dims)
        return BasicMap(self.space, self.constraints + aligned.constraints)

    def domain(self) -> BasicSet:
        bset = self.wrap().project_out(self.space.out_dims)
        return BasicSet._make(self.space.domain_space, bset.constraints)

    def range(self) -> BasicSet:
        bset = self.wrap().project_out(self.space.in_dims)
        return BasicSet._make(self.space.range_space, bset.constraints)

    def apply_range(self, other: "BasicMap") -> "BasicMap":
        """Compose: ``{ x -> z : exists y. self(x,y) and other(y,z) }``."""
        if self.space.n_out != other.space.n_in:
            raise ValueError(
                f"arity mismatch composing {self.space} with {other.space}"
            )
        key = (self.space, self.constraints, other.space, other.constraints)
        cached = _APPLY_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        taken = set(self.space.in_dims) | set(self.space.out_dims) | set(self.space.params)
        # Rename other's dims away from ours, then equate mid dims.
        other_in = fresh_names([f"m_{d}" for d in other.space.in_dims], taken)
        taken |= set(other_in)
        other_out = fresh_names(list(other.space.out_dims), taken)
        rename = dict(zip(other.space.in_dims, other_in))
        rename.update(zip(other.space.out_dims, other_out))
        other_cons = [c.rename(rename) for c in other.constraints]
        mid_eqs = [
            Constraint.eq(LinExpr.var(a) - LinExpr.var(b))
            for a, b in zip(self.space.out_dims, other_in)
        ]
        params = tuple(dict.fromkeys(self.space.params + other.space.params))
        joint_space = SetSpace(
            "_join",
            self.space.in_dims + self.space.out_dims + tuple(other_in) + tuple(other_out),
            params,
        )
        joint = BasicSet(
            joint_space, list(self.constraints) + other_cons + mid_eqs
        )
        projected = joint.project_out(self.space.out_dims + tuple(other_in))
        out_space = MapSpace(
            self.space.in_name,
            self.space.in_dims,
            other.space.out_name,
            tuple(other_out),
            params,
        )
        return _APPLY_MEMO.put(key, BasicMap(out_space, projected.constraints))

    def apply_domain(self, other: "BasicMap") -> "BasicMap":
        """``{ y -> z : exists x. self(x,z) and other(x,y) }``."""
        return self.reverse().apply_range(other).reverse()

    def apply_to_set(self, bset: BasicSet) -> BasicSet:
        """Image of ``bset`` under the relation."""
        if len(bset.space.dims) != self.space.n_in:
            raise ValueError("arity mismatch in apply_to_set")
        aligned = _align_set_dims(bset, self.space.in_dims)
        joint = BasicMap(self.space, self.constraints + aligned.constraints)
        return joint.range()

    def fix(self, binding: Mapping[str, int]) -> "BasicMap":
        cons = [c.substitute(binding) for c in self.constraints]
        in_dims = tuple(d for d in self.space.in_dims if d not in binding)
        out_dims = tuple(d for d in self.space.out_dims if d not in binding)
        params = tuple(p for p in self.space.params if p not in binding)
        return BasicMap(
            MapSpace(self.space.in_name, in_dims, self.space.out_name, out_dims, params),
            cons,
        )

    def fix_params(self, binding: Mapping[str, int]) -> "BasicMap":
        binding = {k: v for k, v in binding.items() if k in self.space.params}
        return self.fix(binding)

    def specialize(self, binding: Mapping[str, int]) -> "BasicMap":
        """Exact, memoized substitution of integers for parameters
        (see :meth:`BasicSet.specialize`)."""
        binding = {
            k: int(v) for k, v in binding.items() if k in self.space.params
        }
        if not binding:
            return self
        key = (self.space, self.constraints, tuple(sorted(binding.items())))
        cached = _SPECIALIZE_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        params = tuple(p for p in self.space.params if p not in binding)
        result = BasicMap(
            MapSpace(
                self.space.in_name,
                self.space.in_dims,
                self.space.out_name,
                self.space.out_dims,
                params,
            ),
            [c.substitute(binding) for c in self.constraints],
        )
        return _SPECIALIZE_MEMO.put(key, result)

    def rename_dims(self, mapping: Mapping[str, str]) -> "BasicMap":
        key = (self.space, self.constraints, tuple(sorted(mapping.items())))
        cached = _RENAME_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        result = BasicMap(
            self.space.rename_dims(dict(mapping)),
            [c.rename(mapping) for c in self.constraints],
        )
        return _RENAME_MEMO.put(key, result)

    def with_names(self, in_name: str, out_name: str) -> "BasicMap":
        return BasicMap(
            MapSpace(in_name, self.space.in_dims, out_name, self.space.out_dims, self.space.params),
            self.constraints,
        )

    def add_constraints(self, constraints: Iterable[Constraint]) -> "BasicMap":
        return BasicMap(self.space, self.constraints + tuple(constraints))

    def simplify(self) -> "BasicMap":
        return BasicMap(self.space, self.wrap().simplify().constraints)

    def image_of_point(self, point: Mapping[str, int]) -> BasicSet:
        """The set of out-points related to a concrete in-point."""
        return self.fix({d: point[d] for d in self.space.in_dims}).range_as_set()

    def range_as_set(self) -> BasicSet:
        if self.space.n_in != 0:
            return self.range()
        return BasicSet(self.space.range_space, self.constraints)

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, BasicMap):
            return NotImplemented
        if (
            self.space.in_dims != other.space.in_dims
            or self.space.out_dims != other.space.out_dims
        ):
            return False
        return self.wrap() == other.wrap()

    def __hash__(self) -> int:
        return hash((self.space, frozenset(self.constraints)))

    def __repr__(self) -> str:
        return f"BasicMap({self})"

    def __str__(self) -> str:
        cons = " and ".join(str(c) for c in self.constraints)
        body = str(self.space) + (f" : {cons}" if cons else "")
        params = f"[{', '.join(self.space.params)}] -> " if self.space.params else ""
        return f"{params}{{ {body} }}"


def _align_set_dims(bset: BasicSet, target_dims: Sequence[str]) -> BasicSet:
    if len(bset.space.dims) != len(target_dims):
        raise ValueError(
            f"arity mismatch: set dims {bset.space.dims} vs {tuple(target_dims)}"
        )
    mapping = dict(zip(bset.space.dims, target_dims))
    return bset.rename_dims(mapping)
