"""Sets: finite unions of basic sets over one space."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from . import memo
from .basic_set import BasicSet
from .constraint import EQ, Constraint
from .space import SetSpace

# Union-algebra memo tables (structural keys over piece-constraint tuples).
# ``dedupe`` results are cheap to rebuild but hits return the *same* object,
# which keeps downstream memo keys identical; ``pattern_hull`` and
# ``coalesce`` replay rational-feasibility probes per call, so their entries
# also spill through the disk cache.
_DEDUPE_MEMO = memo.table("set_dedupe")
_HULL_MEMO = memo.table("pattern_hull", spillable=True)
_COALESCE_MEMO = memo.table("set_coalesce", spillable=True)
_COUNT_MEMO = memo.table("count_points")
_SPECIALIZE_MEMO = memo.table("uset_specialize")
_BOX_MEMO = memo.table("uset_bounding_box")


def _pieces_key(pieces: Sequence[BasicSet]) -> tuple:
    """Structural key of a union's pieces (params may differ per piece)."""
    return tuple((p.space.params, p.constraints) for p in pieces)


class Set:
    """A union of :class:`BasicSet` pieces sharing a space."""

    __slots__ = ("space", "pieces")

    def __init__(self, space: SetSpace, pieces: Iterable[BasicSet] = ()):
        clean: List[BasicSet] = []
        for p in pieces:
            if p.space.dims != space.dims or p.space.name != space.name:
                raise ValueError(f"piece space {p.space} != {space}")
            if not p.is_obviously_empty():
                clean.append(p)
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "pieces", tuple(clean))

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Set is immutable")

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            object.__setattr__(self, slot, value)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_basic(bset: BasicSet) -> "Set":
        return Set(bset.space, [bset])

    @staticmethod
    def empty(space: SetSpace) -> "Set":
        return Set(space, [])

    @staticmethod
    def universe(space: SetSpace) -> "Set":
        return Set(space, [BasicSet.universe(space)])

    # -- queries -----------------------------------------------------------

    def is_empty(self) -> bool:
        return all(p.is_empty() for p in self.pieces)

    def contains(self, point: Mapping[str, int]) -> bool:
        return any(p.contains(point) for p in self.pieces)

    def sample(self) -> Optional[Dict[str, int]]:
        for p in self.pieces:
            found = p.sample()
            if found is not None:
                return found
        return None

    def is_subset(self, other: "Set") -> bool:
        return self.subtract(other).is_empty()

    def is_equal(self, other: "Set") -> bool:
        return self.is_subset(other) and other.is_subset(self)

    # -- algebra -----------------------------------------------------------

    def union(self, other: "Set") -> "Set":
        if self.space.dims != other.space.dims or self.space.name != other.space.name:
            raise ValueError(f"space mismatch: {self.space} vs {other.space}")
        params = tuple(dict.fromkeys(self.space.params + other.space.params))
        space = self.space.with_params(params)
        return Set(space, _reparam(self.pieces, params) + _reparam(other.pieces, params))

    def intersect(self, other: "Set") -> "Set":
        if self.space.dims != other.space.dims or self.space.name != other.space.name:
            raise ValueError(f"space mismatch: {self.space} vs {other.space}")
        params = tuple(dict.fromkeys(self.space.params + other.space.params))
        space = self.space.with_params(params)
        out = []
        for a in _reparam(self.pieces, params):
            for b in _reparam(other.pieces, params):
                piece = a.intersect(b)
                if not piece.is_obviously_empty():
                    out.append(piece)
        return Set(space, out)

    def subtract(self, other: "Set") -> "Set":
        if self.space.dims != other.space.dims or self.space.name != other.space.name:
            raise ValueError(f"space mismatch: {self.space} vs {other.space}")
        params = tuple(dict.fromkeys(self.space.params + other.space.params))
        space = self.space.with_params(params)
        remaining = list(_reparam(self.pieces, params))
        for b in _reparam(other.pieces, params):
            next_remaining: List[BasicSet] = []
            for a in remaining:
                next_remaining.extend(_subtract_basic(a, b))
            remaining = next_remaining
        return Set(space, remaining)

    def dedupe(self) -> "Set":
        """Drop syntactically identical pieces (cheap, exact)."""
        mkey = (self.space, _pieces_key(self.pieces))
        cached = _DEDUPE_MEMO.get(mkey)
        if cached is not memo.MISS:
            return cached
        seen = set()
        out = []
        for p in self.pieces:
            key = frozenset(p.constraints)
            if key not in seen:
                seen.add(key)
                out.append(p)
        return _DEDUPE_MEMO.put(mkey, Set(self.space, out))

    def pattern_hull(self) -> "Set":
        """The *simple hull*: one piece over-approximating the union.

        Equalities are expanded into inequality pairs; for every
        coefficient pattern present in **all** pieces the weakest constant
        is kept, other constraints are dropped.  The result contains every
        piece (a sound over-approximation).  Exact when the pieces are
        shifted copies of one region whose union is a box — the halo-merge
        case this exists for.  Callers use it only where growth is sound
        (footprints and extension schedules, which may legally recompute
        more).
        """
        from .constraint import GE, Constraint

        from .linexpr import LinExpr

        live = [p for p in self.pieces if not p.is_obviously_empty()]
        if len(live) <= 1:
            return Set(self.space, live)
        mkey = (self.space, _pieces_key(live))
        cached = _HULL_MEMO.get(mkey)
        if cached is not memo.MISS:
            return cached

        # Per piece: pattern -> effective (tightest) constant among that
        # piece's own constraints with this pattern (EQs contribute both
        # directions).
        per_piece: List[Dict[frozenset, int]] = []
        for p in live:
            table: Dict[frozenset, int] = {}
            for c in p.constraints:
                ges = (
                    [c]
                    if c.kind == GE
                    else [Constraint(c.expr, GE), Constraint(-c.expr, GE)]
                )
                for g in ges:
                    key = frozenset(g.expr.coeffs.items())
                    const = g.expr.const
                    if key in table:
                        table[key] = min(table[key], const)
                    else:
                        table[key] = const
            per_piece.append(table)

        # Hull only within groups sharing the same pattern *set*: the hull
        # then keeps every pattern (so no piece loses a bound direction);
        # pieces with genuinely different access structure (e.g. transposed
        # reads) stay separate.
        groups: Dict[frozenset, List[Dict[frozenset, int]]] = {}
        order: List[frozenset] = []
        for table in per_piece:
            keyset = frozenset(table)
            if keyset not in groups:
                groups[keyset] = []
                order.append(keyset)
            groups[keyset].append(table)

        out: List[BasicSet] = []
        for keyset in order:
            tables = groups[keyset]
            cons = []
            # Deterministic constraint order: frozenset iteration is salted
            # by PYTHONHASHSEED, and constraint tuples feed memo keys and
            # printed output.
            for key in sorted(keyset, key=sorted):
                const = max(t[key] for t in tables)  # weakest bound wins
                cons.append(Constraint(LinExpr(dict(key), const), GE))
            out.append(BasicSet(self.space, cons))
        return _HULL_MEMO.put(mkey, Set(self.space, out))

    def coalesce(self) -> "Set":
        """Drop pieces contained in other pieces and provably empty pieces.

        Containment and emptiness use rational reasoning — sound for
        dropping (never removes integer points), cheap on large unions.
        """
        from .fm import rational_feasible

        mkey = (self.space, _pieces_key(self.pieces))
        cached = _COALESCE_MEMO.get(mkey)
        if cached is not memo.MISS:
            return cached
        live = [
            p
            for p in self.dedupe().pieces
            if rational_feasible(list(p.constraints))
        ]
        dropped = [False] * len(live)
        for i, p in enumerate(live):
            for j, q in enumerate(live):
                if i == j or dropped[i] or dropped[j]:
                    continue
                if p.is_subset_rational(q):
                    if j > i and q.is_subset_rational(p):
                        continue
                    dropped[i] = True
                    break
        return _COALESCE_MEMO.put(
            mkey, Set(self.space, [p for p, d in zip(live, dropped) if not d])
        )

    def coalesce_exact(self) -> "Set":
        """Integer-exact coalescing (original semantics; O(n^2) searches)."""
        live = [p for p in self.pieces if not p.is_empty()]
        dropped = [False] * len(live)
        for i, p in enumerate(live):
            for j, q in enumerate(live):
                if i == j or dropped[i] or dropped[j]:
                    continue
                if p.is_subset(q):
                    if j > i and q.is_subset(p):
                        # Equal pieces: keep the earlier one, drop the later
                        # when its turn comes.
                        continue
                    dropped[i] = True
                    break
        return Set(self.space, [p for p, d in zip(live, dropped) if not d])

    def project_out(self, dims: Sequence[str]) -> "Set":
        pieces = [p.project_out(dims) for p in self.pieces]
        space = self.space.drop_dims(dims)
        return Set(space, pieces)

    def fix(self, binding: Mapping[str, int]) -> "Set":
        pieces = [p.fix(binding) for p in self.pieces]
        dims = tuple(d for d in self.space.dims if d not in binding)
        params = tuple(p for p in self.space.params if p not in binding)
        return Set(SetSpace(self.space.name, dims, params), pieces)

    def fix_params(self, binding: Mapping[str, int]) -> "Set":
        binding = {k: v for k, v in binding.items() if k in self.space.params}
        return self.fix(binding)

    def specialize(self, binding: Mapping[str, int]) -> "Set":
        """Exact, memoized substitution of integers for parameters, piece
        by piece (see :meth:`BasicSet.specialize`)."""
        params = tuple(p for p in self.space.params if p not in binding)
        if len(params) == len(self.space.params):
            return self
        key = (
            self.space,
            _pieces_key(self.pieces),
            tuple(sorted(binding.items())),
        )
        cached = _SPECIALIZE_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        space = SetSpace(self.space.name, self.space.dims, params)
        return _SPECIALIZE_MEMO.put(
            key, Set(space, [p.specialize(binding) for p in self.pieces])
        )

    def rename_dims(self, mapping: Mapping[str, str]) -> "Set":
        return Set(
            self.space.rename_dims(dict(mapping)),
            [p.rename_dims(mapping) for p in self.pieces],
        )

    def with_name(self, name: str) -> "Set":
        return Set(
            SetSpace(name, self.space.dims, self.space.params),
            [p.with_name(name) for p in self.pieces],
        )

    def simplify(self) -> "Set":
        return Set(self.space, [p.simplify() for p in self.pieces]).coalesce()

    # -- counting ----------------------------------------------------------

    def count_points(self, params: Mapping[str, int] | None = None) -> int:
        binding = dict(params or {})
        key = (
            self.space,
            _pieces_key(self.pieces),
            tuple(sorted(binding.items())),
        )
        cached = _COUNT_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        n = _count_boxes(self, binding)
        if n is None:
            from .enumerate import enumerate_set_points

            n = sum(1 for _ in enumerate_set_points(self, binding))
        return _COUNT_MEMO.put(key, n)

    def bounding_box(self, params=None):
        key = (
            self.space,
            _pieces_key(self.pieces),
            None if params is None else tuple(sorted(params.items())),
        )
        cached = _BOX_MEMO.get(key)
        if cached is not memo.MISS:
            return dict(cached)  # callers may mutate their box
        box: Dict[str, Tuple[Optional[int], Optional[int]]] = {}
        for p in self.pieces:
            for dim, (lo, hi) in p.bounding_box(params).items():
                if dim not in box:
                    box[dim] = (lo, hi)
                else:
                    olo, ohi = box[dim]
                    lo = None if lo is None or olo is None else min(lo, olo)
                    hi = None if hi is None or ohi is None else max(hi, ohi)
                    box[dim] = (lo, hi)
        _BOX_MEMO.put(key, box)
        return dict(box)

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Set):
            return NotImplemented
        return self.is_equal(other)

    def __repr__(self) -> str:
        return f"Set({self})"

    def __str__(self) -> str:
        if not self.pieces:
            params = f"[{', '.join(self.space.params)}] -> " if self.space.params else ""
            return f"{params}{{ {self.space} : false }}"
        return " ∪ ".join(str(p) for p in self.pieces)

    def __iter__(self):
        return iter(self.pieces)

    def __len__(self):
        return len(self.pieces)


def _box_intervals(
    piece: BasicSet,
) -> Optional[Dict[str, Tuple[int, int]]]:
    """Exact per-dimension integer intervals when ``piece`` is a product of
    1-D sets — every constraint mentions at most one symbol — else None.

    A returned interval with ``hi < lo`` marks an empty piece.  The product
    of the interval extents is then the exact point count, because the
    dimensions are independent and constraint normalization already
    tightened each bound to an integer.
    """
    if piece.space.params:
        return None
    dims = piece.space.dims
    lo: Dict[str, int] = {}
    hi: Dict[str, int] = {}
    empty = False
    for c in piece.constraints:
        coeffs = c.expr.coeffs
        if not coeffs:
            # Pure constants: the constructor drops trivially-true ones,
            # so anything left is false.
            empty = True
            continue
        if len(coeffs) > 1:
            return None
        ((sym, a),) = coeffs.items()
        const = c.expr.const
        if c.kind == EQ:
            if (-const) % a != 0:
                empty = True
                continue
            v = -const // a
            lo[sym] = v if sym not in lo else max(lo[sym], v)
            hi[sym] = v if sym not in hi else min(hi[sym], v)
        elif a > 0:  # a*sym + const >= 0  ->  sym >= ceil(-const/a)
            b = -(const // a)
            lo[sym] = b if sym not in lo else max(lo[sym], b)
        else:  # sym <= floor(const/-a)
            b = const // (-a)
            hi[sym] = b if sym not in hi else min(hi[sym], b)
    if empty:
        return {d: (0, -1) for d in dims} or {"": (0, -1)}
    box: Dict[str, Tuple[int, int]] = {}
    for d in dims:
        if d not in lo or d not in hi:
            return None  # unbounded: let enumeration raise as before
        box[d] = (lo[d], hi[d])
    return box


def _box_count(box: Dict[str, Tuple[int, int]]) -> int:
    total = 1
    for lo, hi in box.values():
        if hi < lo:
            return 0
        total *= hi - lo + 1
    return total


def _piece_count(piece: BasicSet) -> Optional[int]:
    """Exact point count of one basic set, or None when full enumeration
    would be just as cheap.

    Boxes are counted by interval products.  Coupled pieces are split into
    connected components of the constraint graph (dims linked by a shared
    constraint); independent components multiply, so a strided footprint
    like ``{[h,w,dh,dw] : lo <= 8h+dh <= hi, ...}`` enumerates two small
    2-D components instead of their 4-D product.
    """
    if piece.space.params:
        return None
    box = _box_intervals(piece)
    if box is not None:
        return _box_count(box)
    dims = piece.space.dims
    parent = {d: d for d in dims}

    def find(d: str) -> str:
        while parent[d] != d:
            parent[d] = parent[parent[d]]
            d = parent[d]
        return d

    for c in piece.constraints:
        syms = [x for x in c.expr.coeffs if x in parent]
        for a, b in zip(syms, syms[1:]):
            parent[find(a)] = find(b)
    comps: Dict[str, List[str]] = {}
    for d in dims:
        comps.setdefault(find(d), []).append(d)
    if len(comps) <= 1:
        return None  # fully coupled: no decomposition win over enumeration
    from .enumerate import EnumerationError, enumerate_points

    total = 1
    for comp in comps.values():
        cset = set(comp)
        ccons = []
        for c in piece.constraints:
            syms = set(c.expr.coeffs)
            if not syms:
                # Constant constraints survive normalisation only if false.
                return 0
            if syms <= cset:
                ccons.append(c)
        sub = BasicSet(SetSpace(piece.space.name, tuple(comp), ()), ccons)
        try:
            n = sum(1 for _ in enumerate_points(sub))
        except EnumerationError:
            return None  # unbounded: let the full fallback raise as before
        if n == 0:
            return 0
        total *= n
    return total


def _count_boxes(s: "Set", binding: Mapping[str, int]) -> Optional[int]:
    """Exact point count via interval arithmetic, or None to enumerate.

    Handles the shapes that dominate the cost model: unions of axis-aligned
    boxes, overlapping or not, and single coupled pieces that decompose
    into independent components (see :func:`_piece_count`).  Overlapping
    boxes are resolved exactly with a coordinate-compressed sweep (grid
    cells induced by the box edges), so stencil footprints — many shifted
    copies of one window — stay on the fast path.  Everything else falls
    back to lexicographic enumeration (identical results, just slower).
    """
    pieces = [p.fix_params(binding) if binding else p for p in s.pieces]
    if len(pieces) == 1:
        n = _piece_count(pieces[0])
        if n is not None:
            return n
    boxes = []
    for p in pieces:
        box = _box_intervals(p)
        if box is None:
            return None
        if _box_count(box) > 0:
            boxes.append(box)
    if not boxes:
        return 0
    if len(boxes) == 1:
        return _box_count(boxes[0])
    dims = list(boxes[0])
    if not dims:
        return 1  # several non-empty zero-dim pieces: one point
    # Cuts along each dim at every box edge (half-open [lo, hi+1)); each
    # resulting grid cell is either fully inside or fully outside every box,
    # so testing one representative point per cell is exact.
    grids = {}
    for d in dims:
        cuts = set()
        for b in boxes:
            lo, hi = b[d]
            cuts.add(lo)
            cuts.add(hi + 1)
        grids[d] = sorted(cuts)
    total = 0

    def walk(i: int, reps: Tuple[int, ...], cell: int) -> None:
        nonlocal total
        if i == len(dims):
            if any(
                all(b[d][0] <= r <= b[d][1] for d, r in zip(dims, reps))
                for b in boxes
            ):
                total += cell
            return
        g = grids[dims[i]]
        for lo, hi in zip(g, g[1:]):
            walk(i + 1, reps + (lo,), cell * (hi - lo))

    walk(0, (), 1)
    return total


def _reparam(pieces: Sequence[BasicSet], params: Tuple[str, ...]) -> List[BasicSet]:
    return [
        BasicSet(p.space.with_params(params), p.constraints) for p in pieces
    ]


def _subtract_basic(a: BasicSet, b: BasicSet) -> List[BasicSet]:
    """``a - b`` as a union of basic sets.

    For each constraint c of b, emit ``a ∩ (constraints of b seen so far) ∩ ¬c``.
    Including the previously-seen constraints keeps the pieces disjoint.
    """
    if not b.constraints:
        return []
    out: List[BasicSet] = []
    seen: List[Constraint] = []
    for c in b.constraints:
        for neg in c.negated():
            piece = BasicSet(a.space, a.constraints + tuple(seen) + (neg,))
            if not piece.is_obviously_empty():
                out.append(piece)
        seen.append(c)
    return out


def _lex_extreme(s: "Set", maximize: bool, params=None):
    """Shared implementation of lexmin/lexmax for bounded sets."""
    from .fm import bounds_for_symbol, eliminate_symbols, find_integer_point

    fixed = s.fix_params(params or {})
    if fixed.space.params:
        raise ValueError(
            f"lex extreme needs bound params, {fixed.space.params} free"
        )
    dims = list(fixed.space.dims)
    best = None
    for piece in fixed.pieces:
        binding = {}
        cons = list(piece.constraints)
        ok = True
        for i, dim in enumerate(dims):
            rest = dims[i + 1:]
            projected = eliminate_symbols(
                [c.substitute(binding) for c in cons], rest
            )
            lo, hi, _ = bounds_for_symbol(projected, dim, {})
            if lo is None or hi is None:
                raise ValueError(f"unbounded dimension {dim}")
            rng = range(hi, lo - 1, -1) if maximize else range(lo, hi + 1)
            found = False
            for val in rng:
                probe = [c.substitute({**binding, dim: val}) for c in cons]
                if find_integer_point(probe) is not None:
                    binding[dim] = val
                    found = True
                    break
            if not found:
                ok = False
                break
        if not ok:
            continue
        key = tuple(binding[d] for d in dims)
        if best is None or (key > best if maximize else key < best):
            best = key
    if best is None:
        return None
    return dict(zip(dims, best))


def lexmin(s: "Set", params=None):
    """The lexicographically smallest point of a bounded set (or None)."""
    return _lex_extreme(s, maximize=False, params=params)


def lexmax(s: "Set", params=None):
    """The lexicographically largest point of a bounded set (or None)."""
    return _lex_extreme(s, maximize=True, params=params)
