"""Maps: finite unions of basic maps over one map space."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

from . import memo
from .basic_map import BasicMap
from .basic_set import BasicSet
from .set_ import Set
from .space import MapSpace, SetSpace

# An autotune sweep re-specializes the same symbolic relations once per
# candidate, and the cost/promotion passes probe the same concrete maps at
# the same points repeatedly; both are pure, so cache at the union level.
_SPECIALIZE_MEMO = memo.table("umap_specialize")
_IMAGE_MEMO = memo.table("umap_image_of_point")
_FIX_MEMO = memo.table("umap_fix")
_APPLY_SET_MEMO = memo.table("umap_apply_to_set")


class Map:
    """A union of :class:`BasicMap` pieces sharing a map space."""

    __slots__ = ("space", "pieces")

    def __init__(self, space: MapSpace, pieces: Iterable[BasicMap] = ()):
        clean: List[BasicMap] = []
        for p in pieces:
            if (
                p.space.in_dims != space.in_dims
                or p.space.out_dims != space.out_dims
                or p.space.in_name != space.in_name
                or p.space.out_name != space.out_name
            ):
                raise ValueError(f"piece space {p.space} != {space}")
            clean.append(p)
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "pieces", tuple(clean))

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Map is immutable")

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            object.__setattr__(self, slot, value)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_basic(bmap: BasicMap) -> "Map":
        return Map(bmap.space, [bmap])

    @staticmethod
    def empty(space: MapSpace) -> "Map":
        return Map(space, [])

    # -- conversions -------------------------------------------------------

    def wrap(self) -> Set:
        space = SetSpace(
            f"{self.space.in_name}->{self.space.out_name}",
            self.space.in_dims + self.space.out_dims,
            self.space.params,
        )
        return Set(space, [BasicSet(space, p.constraints) for p in self.pieces])

    # -- queries -----------------------------------------------------------

    def is_empty(self) -> bool:
        return all(p.is_empty() for p in self.pieces)

    def is_subset(self, other: "Map") -> bool:
        return self.wrap().is_subset(other.wrap())

    def is_equal(self, other: "Map") -> bool:
        return self.wrap().is_equal(other.wrap())

    # -- algebra -----------------------------------------------------------

    def union(self, other: "Map") -> "Map":
        if (
            self.space.in_dims != other.space.in_dims
            or self.space.out_dims != other.space.out_dims
        ):
            raise ValueError(f"space mismatch: {self.space} vs {other.space}")
        params = tuple(dict.fromkeys(self.space.params + other.space.params))
        space = self.space.with_params(params)
        return Map(space, _reparam(self.pieces, params) + _reparam(other.pieces, params))

    def intersect(self, other: "Map") -> "Map":
        params = tuple(dict.fromkeys(self.space.params + other.space.params))
        space = self.space.with_params(params)
        out = []
        for a in _reparam(self.pieces, params):
            for b in _reparam(other.pieces, params):
                out.append(a.intersect(b))
        return Map(space, out)

    def subtract(self, other: "Map") -> "Map":
        diff = self.wrap().subtract(other.wrap())
        return _unwrap(diff, self.space)

    def reverse(self) -> "Map":
        return Map(self.space.reversed(), [p.reverse() for p in self.pieces])

    def domain(self) -> Set:
        pieces = [p.domain() for p in self.pieces]
        return Set(self.space.domain_space, pieces)

    def range(self) -> Set:
        pieces = [p.range() for p in self.pieces]
        return Set(self.space.range_space, pieces)

    def intersect_domain(self, dom: Set) -> "Map":
        out = []
        for p in self.pieces:
            for d in dom.pieces:
                out.append(p.intersect_domain(d))
        params = tuple(dict.fromkeys(self.space.params + dom.space.params))
        return Map(self.space.with_params(params), _reparam(out, params))

    def intersect_range(self, rng: Set) -> "Map":
        out = []
        for p in self.pieces:
            for r in rng.pieces:
                out.append(p.intersect_range(r))
        params = tuple(dict.fromkeys(self.space.params + rng.space.params))
        return Map(self.space.with_params(params), _reparam(out, params))

    def apply_range(self, other: "Map") -> "Map":
        out = []
        space = None
        for a in self.pieces:
            for b in other.pieces:
                piece = a.apply_range(b)
                space = piece.space
                out.append(piece)
        if space is None:
            params = tuple(dict.fromkeys(self.space.params + other.space.params))
            space = MapSpace(
                self.space.in_name,
                self.space.in_dims,
                other.space.out_name,
                other.space.out_dims,
                params,
            )
            return Map(space, [])
        # Align piece out-dim names (fresh_names may differ across pieces).
        canon = out[0].space
        aligned = []
        for p in out:
            mapping = dict(zip(p.space.out_dims, canon.out_dims))
            aligned.append(p.rename_dims(mapping))
        return Map(canon, aligned)

    def apply_to_set(self, s: Set) -> Set:
        key = (
            self.space,
            tuple(p.constraints for p in self.pieces),
            s.space,
            tuple(p.constraints for p in s.pieces),
        )
        cached = _APPLY_SET_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        pieces: List[BasicSet] = []
        for p in self.pieces:
            for b in s.pieces:
                pieces.append(p.apply_to_set(b))
        params = tuple(dict.fromkeys(self.space.params + s.space.params))
        space = self.space.range_space.with_params(params)
        return _APPLY_SET_MEMO.put(
            key,
            Set(space, [BasicSet(space.with_params(params), q.constraints) for q in pieces]),
        )

    def fix(self, binding: Mapping[str, int]) -> "Map":
        key = (
            self.space,
            tuple(p.constraints for p in self.pieces),
            tuple(sorted(binding.items())),
        )
        cached = _FIX_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        pieces = [p.fix(binding) for p in self.pieces]
        if pieces:
            return _FIX_MEMO.put(key, Map(pieces[0].space, pieces))
        in_dims = tuple(d for d in self.space.in_dims if d not in binding)
        out_dims = tuple(d for d in self.space.out_dims if d not in binding)
        params = tuple(p for p in self.space.params if p not in binding)
        return _FIX_MEMO.put(key, Map(
            MapSpace(self.space.in_name, in_dims, self.space.out_name, out_dims, params),
            [],
        ))

    def fix_params(self, binding: Mapping[str, int]) -> "Map":
        binding = {k: v for k, v in binding.items() if k in self.space.params}
        return self.fix(binding)

    def specialize(self, binding: Mapping[str, int]) -> "Map":
        """Exact, memoized substitution of integers for parameters, piece
        by piece (see :meth:`BasicSet.specialize`)."""
        params = tuple(p for p in self.space.params if p not in binding)
        if len(params) == len(self.space.params):
            return self
        key = (
            self.space,
            tuple(p.constraints for p in self.pieces),
            tuple(sorted(binding.items())),
        )
        cached = _SPECIALIZE_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        space = MapSpace(
            self.space.in_name,
            self.space.in_dims,
            self.space.out_name,
            self.space.out_dims,
            params,
        )
        return _SPECIALIZE_MEMO.put(
            key, Map(space, [p.specialize(binding) for p in self.pieces])
        )

    def rename_dims(self, mapping: Mapping[str, str]) -> "Map":
        return Map(
            self.space.rename_dims(dict(mapping)),
            [p.rename_dims(mapping) for p in self.pieces],
        )

    def with_names(self, in_name: str, out_name: str) -> "Map":
        return Map(
            MapSpace(in_name, self.space.in_dims, out_name, self.space.out_dims, self.space.params),
            [p.with_names(in_name, out_name) for p in self.pieces],
        )

    def dedupe(self) -> "Map":
        return _unwrap(self.wrap().dedupe(), self.space)

    def pattern_hull(self) -> "Map":
        """Over-approximating merge of same-pattern pieces (see Set)."""
        return _unwrap(self.wrap().pattern_hull(), self.space)

    def coalesce(self) -> "Map":
        return _unwrap(self.wrap().coalesce(), self.space)

    def simplify(self) -> "Map":
        return _unwrap(self.wrap().simplify(), self.space)

    def image_of_point(self, point: Mapping[str, int]) -> Set:
        """Set of out-points for a concrete in-point."""
        key = (
            self.space,
            tuple(p.constraints for p in self.pieces),
            tuple(sorted(point.items())),
        )
        cached = _IMAGE_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        pieces = []
        for p in self.pieces:
            pieces.append(p.image_of_point(point))
        space = self.space.range_space
        return _IMAGE_MEMO.put(
            key, Set(space, [BasicSet(space, q.constraints) for q in pieces])
        )

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Map):
            return NotImplemented
        return self.is_equal(other)

    def __repr__(self) -> str:
        return f"Map({self})"

    def __str__(self) -> str:
        if not self.pieces:
            return f"{{ {self.space} : false }}"
        return " ∪ ".join(str(p) for p in self.pieces)

    def __iter__(self):
        return iter(self.pieces)

    def __len__(self):
        return len(self.pieces)


def _reparam(pieces: Sequence[BasicMap], params: Tuple[str, ...]):
    return [BasicMap(p.space.with_params(params), p.constraints) for p in pieces]


def _unwrap(s: Set, space: MapSpace) -> Map:
    params = tuple(dict.fromkeys(space.params + s.space.params))
    mspace = space.with_params(params)
    return Map(
        mspace, [BasicMap(mspace, p.constraints) for p in s.pieces]
    )
