"""Union sets and union maps: collections keyed by tuple name.

These mirror isl's ``union_set``/``union_map``: a ``UnionSet`` maps a tuple
name (a statement or tensor) to a :class:`Set`; a ``UnionMap`` maps a pair of
tuple names to a :class:`Map`.  They are the currency of dependence analysis
and of the paper's Algorithms 1–3.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .map_ import Map
from .set_ import Set


class UnionSet:
    """A union of sets in different spaces, keyed by tuple name."""

    __slots__ = ("sets",)

    def __init__(self, sets: Mapping[str, Set] | Iterable[Set] = ()):
        table: Dict[str, Set] = {}
        if isinstance(sets, Mapping):
            items = sets.values()
        else:
            items = sets
        for s in items:
            name = s.space.name
            if name in table:
                table[name] = table[name].union(s)
            else:
                table[name] = s
        object.__setattr__(self, "sets", table)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("UnionSet is immutable")

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            object.__setattr__(self, slot, value)

    @staticmethod
    def empty() -> "UnionSet":
        return UnionSet({})

    # -- access ------------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        return tuple(self.sets)

    def get(self, name: str) -> Optional[Set]:
        return self.sets.get(name)

    def __getitem__(self, name: str) -> Set:
        return self.sets[name]

    def __contains__(self, name: str) -> bool:
        return name in self.sets

    def __iter__(self) -> Iterator[Set]:
        return iter(self.sets.values())

    def __len__(self) -> int:
        return len(self.sets)

    # -- queries -----------------------------------------------------------

    def is_empty(self) -> bool:
        return all(s.is_empty() for s in self.sets.values())

    def is_subset(self, other: "UnionSet") -> bool:
        for name, s in self.sets.items():
            if s.is_empty():
                continue
            if name not in other.sets:
                return False
            if not s.is_subset(other.sets[name]):
                return False
        return True

    def is_equal(self, other: "UnionSet") -> bool:
        return self.is_subset(other) and other.is_subset(self)

    # -- algebra -----------------------------------------------------------

    def union(self, other: "UnionSet") -> "UnionSet":
        table = dict(self.sets)
        for name, s in other.sets.items():
            if name in table:
                table[name] = table[name].union(s)
            else:
                table[name] = s
        return UnionSet(table)

    def intersect(self, other: "UnionSet") -> "UnionSet":
        table = {}
        for name, s in self.sets.items():
            if name in other.sets:
                table[name] = s.intersect(other.sets[name])
        return UnionSet(table)

    def subtract(self, other: "UnionSet") -> "UnionSet":
        table = {}
        for name, s in self.sets.items():
            if name in other.sets:
                table[name] = s.subtract(other.sets[name])
            else:
                table[name] = s
        return UnionSet(table)

    def coalesce(self) -> "UnionSet":
        return UnionSet({n: s.coalesce() for n, s in self.sets.items()})

    def drop_empty(self) -> "UnionSet":
        return UnionSet({n: s for n, s in self.sets.items() if not s.is_empty()})

    def fix_params(self, binding: Mapping[str, int]) -> "UnionSet":
        return UnionSet({n: s.fix_params(binding) for n, s in self.sets.items()})

    def specialize(self, binding: Mapping[str, int]) -> "UnionSet":
        return UnionSet({n: s.specialize(binding) for n, s in self.sets.items()})

    def count_points(self, params=None) -> int:
        return sum(s.count_points(params) for s in self.sets.values())

    def __eq__(self, other) -> bool:
        if not isinstance(other, UnionSet):
            return NotImplemented
        return self.is_equal(other)

    def __repr__(self) -> str:
        return f"UnionSet({self})"

    def __str__(self) -> str:
        return "{ " + "; ".join(str(s) for s in self.sets.values()) + " }"


class UnionMap:
    """A union of maps in different spaces, keyed by (in_name, out_name)."""

    __slots__ = ("maps",)

    def __init__(
        self, maps: Mapping[Tuple[str, str], Map] | Iterable[Map] = ()
    ):
        table: Dict[Tuple[str, str], Map] = {}
        if isinstance(maps, Mapping):
            items = maps.values()
        else:
            items = maps
        for m in items:
            key = (m.space.in_name, m.space.out_name)
            if key in table:
                prev = table[key]
                rename = dict(zip(m.space.in_dims, prev.space.in_dims))
                rename.update(zip(m.space.out_dims, prev.space.out_dims))
                table[key] = prev.union(m.rename_dims(rename))
            else:
                table[key] = m
        object.__setattr__(self, "maps", table)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("UnionMap is immutable")

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            object.__setattr__(self, slot, value)

    @staticmethod
    def empty() -> "UnionMap":
        return UnionMap({})

    # -- access ------------------------------------------------------------

    def keys(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(self.maps)

    def get(self, key: Tuple[str, str]) -> Optional[Map]:
        return self.maps.get(key)

    def __getitem__(self, key: Tuple[str, str]) -> Map:
        return self.maps[key]

    def __contains__(self, key) -> bool:
        return key in self.maps

    def __iter__(self) -> Iterator[Map]:
        return iter(self.maps.values())

    def __len__(self) -> int:
        return len(self.maps)

    def with_in_name(self, name: str) -> "UnionMap":
        return UnionMap(
            {k: m for k, m in self.maps.items() if k[0] == name}
        )

    def with_out_name(self, name: str) -> "UnionMap":
        return UnionMap(
            {k: m for k, m in self.maps.items() if k[1] == name}
        )

    # -- queries -----------------------------------------------------------

    def is_empty(self) -> bool:
        return all(m.is_empty() for m in self.maps.values())

    def is_subset(self, other: "UnionMap") -> bool:
        for key, m in self.maps.items():
            if m.is_empty():
                continue
            if key not in other.maps:
                return False
            theirs = other.maps[key]
            rename = dict(zip(m.space.in_dims, theirs.space.in_dims))
            rename.update(zip(m.space.out_dims, theirs.space.out_dims))
            if not m.rename_dims(rename).is_subset(theirs):
                return False
        return True

    def is_equal(self, other: "UnionMap") -> bool:
        return self.is_subset(other) and other.is_subset(self)

    # -- algebra -----------------------------------------------------------

    def union(self, other: "UnionMap") -> "UnionMap":
        return UnionMap(list(self.maps.values()) + list(other.maps.values()))

    def reverse(self) -> "UnionMap":
        return UnionMap([m.reverse() for m in self.maps.values()])

    def domain(self) -> UnionSet:
        return UnionSet([m.domain() for m in self.maps.values()])

    def range(self) -> UnionSet:
        return UnionSet([m.range() for m in self.maps.values()])

    def intersect_domain(self, dom: UnionSet) -> "UnionMap":
        out = []
        for (in_name, _), m in self.maps.items():
            s = dom.get(in_name)
            if s is None:
                continue
            aligned = s.rename_dims(dict(zip(s.space.dims, m.space.in_dims)))
            out.append(m.intersect_domain(aligned))
        return UnionMap(out)

    def intersect_range(self, rng: UnionSet) -> "UnionMap":
        out = []
        for (_, out_name), m in self.maps.items():
            s = rng.get(out_name)
            if s is None:
                continue
            aligned = s.rename_dims(dict(zip(s.space.dims, m.space.out_dims)))
            out.append(m.intersect_range(aligned))
        return UnionMap(out)

    def apply_range(self, other: "UnionMap") -> "UnionMap":
        out = []
        for (a_in, a_out), m1 in self.maps.items():
            for (b_in, b_out), m2 in other.maps.items():
                if a_out != b_in or m1.space.n_out != m2.space.n_in:
                    continue
                composed = m1.apply_range(m2)
                if not composed.is_empty():
                    out.append(composed)
        return UnionMap(out)

    def apply_to_set(self, uset: UnionSet) -> UnionSet:
        out = []
        for (in_name, _), m in self.maps.items():
            s = uset.get(in_name)
            if s is None:
                continue
            aligned = s.rename_dims(dict(zip(s.space.dims, m.space.in_dims)))
            image = m.apply_to_set(aligned)
            if not image.is_empty():
                out.append(image)
        return UnionSet(out)

    def subtract(self, other: "UnionMap") -> "UnionMap":
        table = {}
        for key, m in self.maps.items():
            if key in other.maps:
                theirs = other.maps[key]
                rename = dict(zip(theirs.space.in_dims, m.space.in_dims))
                rename.update(zip(theirs.space.out_dims, m.space.out_dims))
                table[key] = m.subtract(theirs.rename_dims(rename))
            else:
                table[key] = m
        return UnionMap(table)

    def coalesce(self) -> "UnionMap":
        return UnionMap({k: m.coalesce() for k, m in self.maps.items()})

    def drop_empty(self) -> "UnionMap":
        return UnionMap({k: m for k, m in self.maps.items() if not m.is_empty()})

    def fix_params(self, binding: Mapping[str, int]) -> "UnionMap":
        return UnionMap({k: m.fix_params(binding) for k, m in self.maps.items()})

    def specialize(self, binding: Mapping[str, int]) -> "UnionMap":
        return UnionMap({k: m.specialize(binding) for k, m in self.maps.items()})

    def __eq__(self, other) -> bool:
        if not isinstance(other, UnionMap):
            return NotImplemented
        return self.is_equal(other)

    def __repr__(self) -> str:
        return f"UnionMap({self})"

    def __str__(self) -> str:
        return "{ " + "; ".join(str(m) for m in self.maps.values()) + " }"
