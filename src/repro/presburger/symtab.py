"""Shared symbol table: interned names with dense integer ids.

Every symbol (iterator, tile-dimension or parameter name) that enters the
presburger layer is registered here once.  :class:`LinExpr` stores its
coefficient vector as a tuple of ``(symbol_id, coeff)`` pairs sorted by id,
so merging two expressions is a linear walk over small int pairs instead of
dict rebuilding, and structural hashing never touches strings.

Ids are process-local and monotonically increasing; they never leak into
pickles (``LinExpr`` serialises by name), so results stay portable across
the batch driver's worker processes.
"""

from __future__ import annotations

import sys
from typing import Dict, List


class SymbolTable:
    """Bidirectional name <-> id registry (append-only)."""

    __slots__ = ("_ids", "_names")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []

    def id_of(self, name: str) -> int:
        i = self._ids.get(name)
        if i is None:
            name = sys.intern(name)
            i = len(self._names)
            self._ids[name] = i
            self._names.append(name)
        return i

    def name_of(self, i: int) -> str:
        return self._names[i]

    def __len__(self) -> int:
        return len(self._names)


#: The process-wide table shared by every LinExpr.
SYMBOLS = SymbolTable()

sym_id = SYMBOLS.id_of
sym_name = SYMBOLS.name_of
