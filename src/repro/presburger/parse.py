"""A small parser for isl-like set/map notation.

Examples::

    parse_set("[H, W] -> { S0[h, w] : 0 <= h < H and 0 <= w < W }")
    parse_map("{ S2[h, w, kh, kw] -> A[h + kh, w + kw] : 0 <= kh < 3 }")
    parse_union_set("{ S0[h, w] : ... ; S1[h, w] : ... }")

Supported syntax:

* optional parameter prologue ``[P, Q] ->``
* one or more items separated by ``;``
* an item is ``Name[dims]`` (set) or ``Name[dims] -> Name[exprs]`` (map),
  optionally followed by ``: condition``
* conditions: ``and``-connected comparison chains (``0 <= h < H``), with
  ``or`` producing unions; comparators ``<= < >= > = ==``
* affine expressions with ``+ - *`` (multiplication by integer literals only)
* map output tuples may contain affine expressions (``A[h + kh]``)
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from .basic_map import BasicMap
from .basic_set import BasicSet
from .constraint import Constraint
from .linexpr import LinExpr
from .map_ import Map
from .set_ import Set
from .space import MapSpace, SetSpace, fresh_names
from .union import UnionMap, UnionSet

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_']*)|(?P<int>\d+)|(?P<op>->|<=|>=|==|[-+*{}\[\],;:<>=()]))"
)

_KEYWORDS = {"and", "or"}


class ParseError(ValueError):
    pass


def _tokenize(text: str) -> List[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            if text[pos:].strip() == "":
                break
            raise ParseError(f"cannot tokenize at: {text[pos:pos + 20]!r}")
        tokens.append(m.group(m.lastgroup))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ParseError(f"expected {tok!r}, got {got!r}")

    def accept(self, tok: str) -> bool:
        if self.peek() == tok:
            self.pos += 1
            return True
        return False

    # -- grammar -----------------------------------------------------------

    def parse(self):
        params: Tuple[str, ...] = ()
        if self.peek() == "[":
            params = tuple(self._name_list())
            self.expect("->")
        self.expect("{")
        items = []
        if self.peek() != "}":
            items.append(self._item(params))
            while self.accept(";"):
                if self.peek() == "}":
                    break
                items.append(self._item(params))
        self.expect("}")
        if self.peek() is not None:
            raise ParseError(f"trailing tokens: {self.tokens[self.pos:]}")
        return params, items

    def _name_list(self) -> List[str]:
        self.expect("[")
        names = []
        if self.peek() != "]":
            names.append(self.next())
            while self.accept(","):
                names.append(self.next())
        self.expect("]")
        return names

    def _item(self, params):
        name1, dims1 = self._tuple_header()
        for d in dims1:
            if not isinstance(d, str):
                raise ParseError("input tuple dims must be plain identifiers")
        arrow = self.accept("->")
        name2 = dims2 = None
        if arrow:
            name2, dims2 = self._tuple_header()
        conds: List[List[Constraint]] = [[]]
        if self.accept(":"):
            conds = self._condition(set(dims1) | (set() if not arrow else set()))
        return (name1, tuple(dims1), name2, dims2, conds)

    def _tuple_header(self):
        name = ""
        if self.peek() not in ("[",):
            name = self.next()
        self.expect("[")
        entries: List[Union[str, LinExpr]] = []
        if self.peek() != "]":
            entries.append(self._dim_entry())
            while self.accept(","):
                entries.append(self._dim_entry())
        self.expect("]")
        return name, entries

    def _dim_entry(self):
        # A bare identifier stays a string (a dim name); anything else is an
        # affine expression.
        start = self.pos
        tok = self.peek()
        if tok and re.match(r"[A-Za-z_]", tok) and tok not in _KEYWORDS:
            self.pos += 1
            if self.peek() in (",", "]"):
                return tok
            self.pos = start
        return self._expr()

    def _condition(self, _dims) -> List[List[Constraint]]:
        """Returns a disjunction (list) of conjunctions (lists)."""
        disjuncts = [self._conjunction()]
        while self.accept("or"):
            disjuncts.append(self._conjunction())
        return disjuncts

    def _conjunction(self) -> List[Constraint]:
        cons = list(self._chain())
        while self.accept("and"):
            cons.extend(self._chain())
        return cons

    def _chain(self) -> List[Constraint]:
        exprs = [self._expr()]
        ops = []
        while self.peek() in ("<", "<=", ">", ">=", "=", "=="):
            ops.append(self.next())
            exprs.append(self._expr())
        if not ops:
            raise ParseError("expected a comparison")
        out = []
        for (lhs, op, rhs) in zip(exprs, ops, exprs[1:]):
            if op == "<":
                out.append(Constraint.lt(lhs, rhs))
            elif op == "<=":
                out.append(Constraint.le(lhs, rhs))
            elif op == ">":
                out.append(Constraint.gt(lhs, rhs))
            elif op == ">=":
                out.append(Constraint.ge(lhs, rhs))
            else:
                out.append(Constraint.eq(lhs, rhs))
        return out

    def _expr(self) -> LinExpr:
        expr = self._term()
        while self.peek() in ("+", "-"):
            op = self.next()
            term = self._term()
            expr = expr + term if op == "+" else expr - term
        return expr

    def _term(self) -> LinExpr:
        if self.accept("-"):
            return -self._term()
        if self.accept("("):
            inner = self._expr()
            self.expect(")")
            if self.accept("*"):
                factor = self._term()
                return _scale(inner, factor)
            return inner
        tok = self.next()
        if tok.isdigit():
            value = LinExpr.const_expr(int(tok))
            if self.accept("*"):
                return _scale(value, self._term())
            return value
        if re.match(r"[A-Za-z_]", tok):
            var = LinExpr.var(tok)
            if self.accept("*"):
                return _scale(var, self._term())
            return var
        raise ParseError(f"unexpected token {tok!r} in expression")


def _scale(a: LinExpr, b: LinExpr) -> LinExpr:
    if a.is_constant():
        return b * a.const
    if b.is_constant():
        return a * b.const
    raise ParseError(f"non-linear product: ({a}) * ({b})")


def _build_sets(params, items) -> Dict[str, Set]:
    by_name: Dict[str, Set] = {}
    for (name, dims, name2, _dims2, conds) in items:
        if name2 is not None:
            raise ParseError("found a map item while parsing a set")
        space = SetSpace(name, dims, params)
        pieces = [BasicSet(space, conj) for conj in conds]
        new = Set(space, pieces)
        if name in by_name:
            prev = by_name[name]
            if prev.space.dims != space.dims:
                new = new.rename_dims(dict(zip(space.dims, prev.space.dims)))
            by_name[name] = by_name[name].union(new)
        else:
            by_name[name] = new
    return by_name


def _build_maps(params, items) -> Dict[Tuple[str, str], Map]:
    by_name: Dict[Tuple[str, str], Map] = {}
    for (name, dims, name2, dims2, conds) in items:
        if name2 is None:
            raise ParseError("found a set item while parsing a map")
        out_entries = list(dims2)
        out_dims = []
        eqs: List[Constraint] = []
        taken = set(dims) | set(params)
        for i, entry in enumerate(out_entries):
            if isinstance(entry, str) and entry not in taken:
                out_dims.append(entry)
                taken.add(entry)
            else:
                expr = entry if isinstance(entry, LinExpr) else LinExpr.var(entry)
                (od,) = fresh_names([f"o{i}"], taken)
                taken.add(od)
                out_dims.append(od)
                eqs.append(Constraint.eq(LinExpr.var(od) - expr))
        space = MapSpace(name, dims, name2, tuple(out_dims), params)
        pieces = [BasicMap(space, list(conj) + eqs) for conj in conds]
        new = Map(space, pieces)
        key = (name, name2)
        if key in by_name:
            prev = by_name[key]
            rename = dict(zip(space.in_dims, prev.space.in_dims))
            rename.update(zip(space.out_dims, prev.space.out_dims))
            new = new.rename_dims(rename)
            by_name[key] = prev.union(new)
        else:
            by_name[key] = new
    return by_name


def parse_set(text: str) -> Set:
    params, items = _Parser(_tokenize(text)).parse()
    sets = _build_sets(params, items)
    if len(sets) != 1:
        raise ParseError(f"expected one tuple name, got {sorted(sets)}")
    return next(iter(sets.values()))


def parse_union_set(text: str) -> UnionSet:
    params, items = _Parser(_tokenize(text)).parse()
    return UnionSet(_build_sets(params, items))


def parse_map(text: str) -> Map:
    params, items = _Parser(_tokenize(text)).parse()
    maps = _build_maps(params, items)
    if len(maps) != 1:
        raise ParseError(f"expected one map space, got {sorted(maps)}")
    return next(iter(maps.values()))


def parse_union_map(text: str) -> UnionMap:
    params, items = _Parser(_tokenize(text)).parse()
    return UnionMap(_build_maps(params, items))
