"""Exact integer affine expressions over named symbols.

``LinExpr`` is the shared currency of the whole package: constraints,
schedules, access functions and tile bounds are all built from them.  All
arithmetic is exact over Python integers.

Internally an expression is an interned, immutable tuple of
``(symbol_id, coeff)`` pairs sorted by id over the shared
:data:`~repro.presburger.symtab.SYMBOLS` table, plus a constant.  Arithmetic
merges those tuples directly (no intermediate dicts) and routes results
through a hash-consing table, so structurally equal expressions are usually
the *same* object: hashing is a cached-int read and equality is an ``is``
check on the hot paths.  The ``coeffs`` mapping view is materialised lazily
for the callers that want a dict.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, Iterable, Mapping, Tuple, Union

from .symtab import sym_id, sym_name

Number = int

#: Hash-consing table: (terms, const) -> the canonical LinExpr instance.
#: Cleared wholesale when it grows past the cap — interning is an
#: optimisation only; equality falls back to structural comparison.
_INTERN: Dict[tuple, "LinExpr"] = {}
_INTERN_CAP = 1 << 17


def clear_intern_table() -> None:
    """Drop all hash-consed expressions (used by cold-path benchmarks)."""
    _INTERN.clear()


def intern_table_size() -> int:
    return len(_INTERN)


class LinExpr:
    """An affine expression ``sum(coeff[s] * s) + const`` with integer coeffs.

    Immutable.  Symbols are plain strings (iterator, tile-dimension or
    parameter names).  Zero coefficients are normalised away so equality and
    hashing behave structurally.
    """

    __slots__ = ("terms", "const", "_hash", "_coeffs")

    def __init__(self, coeffs: Mapping[str, int] | None = None, const: int = 0):
        terms = []
        if coeffs:
            for sym, c in coeffs.items():
                if not isinstance(c, int):
                    raise TypeError(f"coefficient for {sym!r} must be int, got {type(c)}")
                if c != 0:
                    terms.append((sym_id(sym), c))
        if not isinstance(const, int):
            raise TypeError(f"constant must be int, got {type(const)}")
        terms.sort()
        _init(self, tuple(terms), const)
        key = (self.terms, const)
        if key not in _INTERN and len(_INTERN) < _INTERN_CAP:
            _INTERN[key] = self

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("LinExpr is immutable")

    def __getstate__(self):
        # Serialise by *name*: symbol ids are process-local.
        return (dict(self.coeffs), self.const)

    def __setstate__(self, state):
        coeffs, const = state[0], state[1]
        terms = tuple(sorted((sym_id(s), c) for s, c in coeffs.items() if c))
        _init(self, terms, const)

    # -- constructors ------------------------------------------------------

    @classmethod
    def _make(cls, terms: Tuple[Tuple[int, int], ...], const: int) -> "LinExpr":
        """Interning fast path for pre-normalised ``terms`` (sorted, no zeros)."""
        key = (terms, const)
        cached = _INTERN.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        _init(self, terms, const)
        if len(_INTERN) >= _INTERN_CAP:
            _INTERN.clear()
        _INTERN[key] = self
        return self

    @staticmethod
    def var(name: str) -> "LinExpr":
        return LinExpr._make(((sym_id(name), 1),), 0)

    @staticmethod
    def const_expr(value: int) -> "LinExpr":
        if not isinstance(value, int):
            raise TypeError(f"constant must be int, got {type(value)}")
        return LinExpr._make((), value)

    @staticmethod
    def coerce(value: Union["LinExpr", int, str]) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, int):
            return LinExpr._make((), value)
        if isinstance(value, str):
            return LinExpr.var(value)
        raise TypeError(f"cannot coerce {value!r} to LinExpr")

    # -- queries -----------------------------------------------------------

    @property
    def coeffs(self) -> Dict[str, int]:
        """Mapping view ``{symbol name: coeff}`` (materialised lazily)."""
        d = self._coeffs
        if d is None:
            d = {sym_name(i): c for i, c in self.terms}
            object.__setattr__(self, "_coeffs", d)
        return d

    def symbols(self) -> Tuple[str, ...]:
        return tuple(sorted(self.coeffs))

    def coeff(self, sym: str) -> int:
        return self.coeffs.get(sym, 0)

    def is_constant(self) -> bool:
        return not self.terms

    def involves(self, syms: Iterable[str]) -> bool:
        d = self.coeffs
        return any(s in d for s in syms)

    def content(self) -> int:
        """GCD of all coefficients (not the constant); 0 for constant exprs."""
        g = 0
        for _, c in self.terms:
            g = gcd(g, c)
        return abs(g)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        if isinstance(other, int):
            if other == 0:
                return self
            return LinExpr._make(self.terms, self.const + other)
        if not isinstance(other, LinExpr):
            other = LinExpr.coerce(other)
        a, b = self.terms, other.terms
        if not b:
            return self if other.const == 0 else LinExpr._make(a, self.const + other.const)
        if not a:
            return other if self.const == 0 else LinExpr._make(b, self.const + other.const)
        return LinExpr._make(_merge(a, b, 1), self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr._make(tuple((s, -c) for s, c in self.terms), -self.const)

    def __sub__(self, other) -> "LinExpr":
        if isinstance(other, int):
            if other == 0:
                return self
            return LinExpr._make(self.terms, self.const - other)
        if not isinstance(other, LinExpr):
            other = LinExpr.coerce(other)
        if not other.terms:
            return self if other.const == 0 else LinExpr._make(self.terms, self.const - other.const)
        return LinExpr._make(_merge(self.terms, other.terms, -1), self.const - other.const)

    def __rsub__(self, other) -> "LinExpr":
        return LinExpr.coerce(other) - self

    def __mul__(self, factor: int) -> "LinExpr":
        if not isinstance(factor, int):
            raise TypeError("LinExpr can only be scaled by an int")
        if factor == 1:
            return self
        if factor == 0:
            return LinExpr._make((), 0)
        return LinExpr._make(
            tuple((s, c * factor) for s, c in self.terms), self.const * factor
        )

    __rmul__ = __mul__

    def scale_down_exact(self, divisor: int) -> "LinExpr":
        if divisor == 0:
            raise ZeroDivisionError
        terms = []
        for s, c in self.terms:
            if c % divisor:
                raise ValueError(f"{self} not exactly divisible by {divisor}")
            terms.append((s, c // divisor))
        if self.const % divisor:
            raise ValueError(f"{self} not exactly divisible by {divisor}")
        return LinExpr._make(tuple(terms), self.const // divisor)

    # -- substitution ------------------------------------------------------

    def substitute(self, binding: Mapping[str, Union["LinExpr", int]]) -> "LinExpr":
        """Replace symbols with expressions or integers."""
        if not self.terms:
            return self
        hit = False
        for s, _ in self.terms:
            if sym_name(s) in binding:
                hit = True
                break
        if not hit:
            return self
        acc: Dict[int, int] = {}
        const = self.const
        for s, c in self.terms:
            value = binding.get(sym_name(s))
            if value is None:
                acc[s] = acc.get(s, 0) + c
            elif isinstance(value, int):
                const += c * value
            else:
                value = LinExpr.coerce(value)
                for s2, c2 in value.terms:
                    acc[s2] = acc.get(s2, 0) + c * c2
                const += c * value.const
        terms = tuple(sorted((s, c) for s, c in acc.items() if c))
        return LinExpr._make(terms, const)

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        if not self.terms:
            return self
        changed = False
        out: Dict[int, int] = {}
        for s, c in self.terms:
            name = sym_name(s)
            new = mapping.get(name, name)
            if new != name:
                changed = True
            # Overwrite on collision (renames are injective in practice).
            out[sym_id(new)] = c
        if not changed:
            return self
        return LinExpr._make(tuple(sorted(out.items())), self.const)

    def eval(self, binding: Mapping[str, int]) -> int:
        total = self.const
        for s, c in self.terms:
            total += c * binding[sym_name(s)]
        return total

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.const == other.const and self.terms == other.terms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"LinExpr({self})"

    def __str__(self) -> str:
        parts = []
        coeffs = self.coeffs
        for sym in sorted(coeffs):
            c = coeffs[sym]
            if c == 1:
                parts.append(f"+ {sym}")
            elif c == -1:
                parts.append(f"- {sym}")
            elif c > 0:
                parts.append(f"+ {c}{sym}")
            else:
                parts.append(f"- {-c}{sym}")
        if self.const > 0 or not parts:
            parts.append(f"+ {self.const}")
        elif self.const < 0:
            parts.append(f"- {-self.const}")
        text = " ".join(parts)
        if text.startswith("+ "):
            text = text[2:]
        return text


def _init(self: LinExpr, terms: Tuple[Tuple[int, int], ...], const: int) -> None:
    object.__setattr__(self, "terms", terms)
    object.__setattr__(self, "const", const)
    object.__setattr__(self, "_hash", hash((terms, const)))
    object.__setattr__(self, "_coeffs", None)


def _merge(
    a: Tuple[Tuple[int, int], ...], b: Tuple[Tuple[int, int], ...], sign: int
) -> Tuple[Tuple[int, int], ...]:
    """Merge two id-sorted term tuples: ``a + sign*b`` (zeros dropped)."""
    out = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        sa, ca = a[i]
        sb, cb = b[j]
        if sa == sb:
            c = ca + sign * cb
            if c:
                out.append((sa, c))
            i += 1
            j += 1
        elif sa < sb:
            out.append(a[i])
            i += 1
        else:
            out.append((sb, sign * cb))
            j += 1
    if i < la:
        out.extend(a[i:])
    while j < lb:
        sb, cb = b[j]
        out.append((sb, sign * cb))
        j += 1
    return tuple(out)


V = LinExpr.var
C = LinExpr.const_expr
