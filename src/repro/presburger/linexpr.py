"""Exact integer affine expressions over named symbols.

``LinExpr`` is the shared currency of the whole package: constraints,
schedules, access functions and tile bounds are all built from them.  All
arithmetic is exact over Python integers.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, Iterable, Mapping, Tuple, Union

Number = int


class LinExpr:
    """An affine expression ``sum(coeff[s] * s) + const`` with integer coeffs.

    Immutable.  Symbols are plain strings (iterator, tile-dimension or
    parameter names).  Zero coefficients are normalised away so equality and
    hashing behave structurally.
    """

    __slots__ = ("coeffs", "const", "_hash")

    def __init__(self, coeffs: Mapping[str, int] | None = None, const: int = 0):
        clean: Dict[str, int] = {}
        if coeffs:
            for sym, c in coeffs.items():
                if not isinstance(c, int):
                    raise TypeError(f"coefficient for {sym!r} must be int, got {type(c)}")
                if c != 0:
                    clean[sym] = c
        if not isinstance(const, int):
            raise TypeError(f"constant must be int, got {type(const)}")
        object.__setattr__(self, "coeffs", clean)
        object.__setattr__(self, "const", const)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("LinExpr is immutable")

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            object.__setattr__(self, slot, value)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def var(name: str) -> "LinExpr":
        return LinExpr({name: 1})

    @staticmethod
    def const_expr(value: int) -> "LinExpr":
        return LinExpr({}, value)

    @staticmethod
    def coerce(value: Union["LinExpr", int, str]) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, int):
            return LinExpr({}, value)
        if isinstance(value, str):
            return LinExpr.var(value)
        raise TypeError(f"cannot coerce {value!r} to LinExpr")

    # -- queries -----------------------------------------------------------

    def symbols(self) -> Tuple[str, ...]:
        return tuple(sorted(self.coeffs))

    def coeff(self, sym: str) -> int:
        return self.coeffs.get(sym, 0)

    def is_constant(self) -> bool:
        return not self.coeffs

    def involves(self, syms: Iterable[str]) -> bool:
        return any(s in self.coeffs for s in syms)

    def content(self) -> int:
        """GCD of all coefficients (not the constant); 0 for constant exprs."""
        g = 0
        for c in self.coeffs.values():
            g = gcd(g, abs(c))
        return g

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        other = LinExpr.coerce(other)
        coeffs = dict(self.coeffs)
        for sym, c in other.coeffs.items():
            coeffs[sym] = coeffs.get(sym, 0) + c
        return LinExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({s: -c for s, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other) -> "LinExpr":
        return self + (-LinExpr.coerce(other))

    def __rsub__(self, other) -> "LinExpr":
        return LinExpr.coerce(other) + (-self)

    def __mul__(self, factor: int) -> "LinExpr":
        if not isinstance(factor, int):
            raise TypeError("LinExpr can only be scaled by an int")
        return LinExpr({s: c * factor for s, c in self.coeffs.items()}, self.const * factor)

    __rmul__ = __mul__

    def scale_down_exact(self, divisor: int) -> "LinExpr":
        if divisor == 0:
            raise ZeroDivisionError
        coeffs = {}
        for sym, c in self.coeffs.items():
            if c % divisor:
                raise ValueError(f"{self} not exactly divisible by {divisor}")
            coeffs[sym] = c // divisor
        if self.const % divisor:
            raise ValueError(f"{self} not exactly divisible by {divisor}")
        return LinExpr(coeffs, self.const // divisor)

    # -- substitution ------------------------------------------------------

    def substitute(self, binding: Mapping[str, Union["LinExpr", int]]) -> "LinExpr":
        """Replace symbols with expressions or integers."""
        result = LinExpr({}, self.const)
        for sym, c in self.coeffs.items():
            if sym in binding:
                result = result + LinExpr.coerce(binding[sym]) * c
            else:
                result = result + LinExpr({sym: c})
        return result

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        return LinExpr({mapping.get(s, s): c for s, c in self.coeffs.items()}, self.const)

    def eval(self, binding: Mapping[str, int]) -> int:
        total = self.const
        for sym, c in self.coeffs.items():
            total += c * binding[sym]
        return total

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash((frozenset(self.coeffs.items()), self.const))
            )
        return self._hash

    def __repr__(self) -> str:
        return f"LinExpr({self})"

    def __str__(self) -> str:
        parts = []
        for sym in sorted(self.coeffs):
            c = self.coeffs[sym]
            if c == 1:
                parts.append(f"+ {sym}")
            elif c == -1:
                parts.append(f"- {sym}")
            elif c > 0:
                parts.append(f"+ {c}{sym}")
            else:
                parts.append(f"- {-c}{sym}")
        if self.const > 0 or not parts:
            parts.append(f"+ {self.const}")
        elif self.const < 0:
            parts.append(f"- {-self.const}")
        text = " ".join(parts)
        if text.startswith("+ "):
            text = text[2:]
        return text


V = LinExpr.var
C = LinExpr.const_expr
