"""Operation memoization for the presburger hot loop.

The footprint computation (relations (2)-(4) of the paper) replays the same
``BasicMap``/``BasicSet`` operations over and over: tile-to-instance maps
are composed with every access of a statement, access maps are rebuilt per
dependence probe, and the autotuner re-runs whole passes over shifted
variants of one constraint system.  Because every presburger value is an
immutable value object, those operations are pure — so results are memoized
here in per-operation tables.

Keys are *structural*: spaces and constraint tuples (whose ``LinExpr``
leaves carry cached hashes and are usually hash-consed), never semantic
equality.  A hit therefore returns the exact object an earlier identical
call produced, which keeps optimizer outputs bit-identical to the uncached
path.

Eviction is *generation-segmented* rather than wholesale: each table keeps
a young and an old generation.  New and recently-hit entries live in the
young generation; when it fills, the old generation (everything not touched
since the previous rotation) is dropped and the young one ages.  An
autotune sweep whose working set exceeds the cap therefore keeps its hot
entries resident instead of periodically losing everything.

Tables marked *spillable* can round-trip through the on-disk compile cache
(:mod:`repro.service.cache`): :func:`snapshot` captures their resident
entries as portable pairs (``LinExpr`` pickles by symbol name, so entries
survive a fresh process with a fresh symbol table) and
:func:`load_snapshot` installs them, marked *warm*.  Hits on warm entries
are counted separately so ``optimize --stats`` can attribute speedups to
cross-process warm-starts.

Hit/miss counts are forwarded to :mod:`repro.service.instrument` (visible
under ``optimize --stats`` as ``presburger.memo.<op>.hit/miss/warm_hit``)
and kept process-wide for :func:`stats`.  Memoization is an optimisation
only, so losing entries — to eviction or a failed spill — is always safe.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..service import instrument

#: Sentinel distinguishing "no entry" from a cached ``None``/``False``.
MISS = object()

CAP = 1 << 14

#: Per-table bound on how many entries one :func:`snapshot` captures.
SPILL_LIMIT = 4096

_TABLES: Dict[str, "MemoTable"] = {}


class MemoTable:
    """One bounded memo dict with generational eviction and hit accounting."""

    __slots__ = ("name", "data", "old", "spillable", "hits", "misses",
                 "warm_hits", "evictions", "_warm",
                 "_hit_counter", "_miss_counter", "_warm_counter")

    def __init__(self, name: str, spillable: bool = False):
        self.name = name
        self.data: Dict[Any, Any] = {}  # young generation
        self.old: Dict[Any, Any] = {}   # previous generation
        self.spillable = spillable
        self.hits = 0
        self.misses = 0
        self.warm_hits = 0
        self.evictions = 0
        self._warm: set = set()  # keys installed from a disk snapshot
        self._hit_counter = f"presburger.memo.{name}.hit"
        self._miss_counter = f"presburger.memo.{name}.miss"
        self._warm_counter = f"presburger.memo.{name}.warm_hit"

    def get(self, key):
        """The cached value for ``key``, or :data:`MISS`."""
        value = self.data.get(key, MISS)
        if value is MISS:
            value = self.old.get(key, MISS)
            if value is not MISS:
                # Promote: entries hit since the last rotation survive it.
                del self.old[key]
                self.data[key] = value
        if value is MISS:
            self.misses += 1
            instrument.count(self._miss_counter)
        else:
            self.hits += 1
            instrument.count(self._hit_counter)
            if key in self._warm:
                self.warm_hits += 1
                instrument.count(self._warm_counter)
        return value

    def put(self, key, value):
        data = self.data
        if len(data) >= CAP // 2:
            self._rotate()
            data = self.data
        data[key] = value
        return value

    def _rotate(self) -> None:
        """Age the young generation; drop everything untouched since the
        previous rotation."""
        dropped = self.old
        self.old = self.data
        self.data = {}
        if dropped:
            self.evictions += len(dropped)
            if self._warm:
                self._warm.difference_update(dropped)

    # -- spill / load ------------------------------------------------------

    def snapshot(self, limit: Optional[int] = None) -> List[Tuple[Any, Any]]:
        """Resident entries as portable pairs, hottest (young) first."""
        items = list(self.data.items()) + list(self.old.items())
        if limit is not None:
            items = items[:limit]
        return items

    def load(self, entries: Iterable[Tuple[Any, Any]]) -> int:
        """Install spilled entries (marked warm); never evicts live data."""
        data, old, warm = self.data, self.old, self._warm
        room = CAP // 2
        n = 0
        for key, value in entries:
            if len(data) >= room:
                break
            if key not in data and key not in old:
                data[key] = value
                warm.add(key)
                n += 1
        return n

    def clear(self) -> None:
        self.data.clear()
        self.old.clear()
        self._warm.clear()

    def __len__(self) -> int:
        return len(self.data) + len(self.old)


def table(name: str, spillable: bool = False) -> MemoTable:
    """The (shared) memo table registered under ``name``."""
    t = _TABLES.get(name)
    if t is None:
        t = _TABLES[name] = MemoTable(name, spillable)
    elif spillable:
        t.spillable = True
    return t


def stats() -> Dict[str, Dict[str, int]]:
    """Process-wide per-table hit/miss/size counts."""
    return {
        name: {
            "hits": t.hits,
            "misses": t.misses,
            "warm_hits": t.warm_hits,
            "size": len(t),
            "evictions": t.evictions,
        }
        for name, t in sorted(_TABLES.items())
    }


def snapshot(
    names: Optional[Iterable[str]] = None,
    limit: int = SPILL_LIMIT,
) -> Dict[str, List[Tuple[Any, Any]]]:
    """Portable ``{table: [(key, value), ...]}`` of the spillable tables.

    Everything inside is built from interned strings, ints and presburger
    value objects that pickle by symbol *name*, so a snapshot written by one
    process loads correctly into another process's fresh symbol table.
    """
    wanted = set(names) if names is not None else None
    out: Dict[str, List[Tuple[Any, Any]]] = {}
    for name, t in sorted(_TABLES.items()):
        take = (name in wanted) if wanted is not None else t.spillable
        if take and len(t):
            entries = t.snapshot(limit)
            if entries:
                out[name] = entries
    return out


def load_snapshot(snap: Mapping[str, Iterable[Tuple[Any, Any]]]) -> int:
    """Install a :func:`snapshot` into this process's tables.

    Returns the number of entries installed.  Safe on any well-formed
    snapshot — unknown table names simply create (non-spillable) tables
    that behave like ordinary memos.
    """
    loaded = 0
    for name, entries in snap.items():
        loaded += table(name).load(entries)
    return loaded


def clear_all() -> None:
    """Empty every memo table and the LinExpr intern table.

    Counters are preserved; only cached values are dropped.  Used by tests
    and by benchmarks that need a genuinely cold path.
    """
    from .linexpr import clear_intern_table

    for t in _TABLES.values():
        t.clear()
    clear_intern_table()
