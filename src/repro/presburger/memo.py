"""Operation memoization for the presburger hot loop.

The footprint computation (relations (2)-(4) of the paper) replays the same
``BasicMap``/``BasicSet`` operations over and over: tile-to-instance maps
are composed with every access of a statement, access maps are rebuilt per
dependence probe, and the autotuner re-runs whole passes over shifted
variants of one constraint system.  Because every presburger value is an
immutable value object, those operations are pure — so results are memoized
here in per-operation tables.

Keys are *structural*: spaces and constraint tuples (whose ``LinExpr``
leaves carry cached hashes and are usually hash-consed), never semantic
equality.  A hit therefore returns the exact object an earlier identical
call produced, which keeps optimizer outputs bit-identical to the uncached
path.

Hit/miss counts are forwarded to :mod:`repro.service.instrument` (visible
under ``optimize --stats`` as ``presburger.memo.<op>.hit/miss``) and kept
process-wide for :func:`stats`.  Tables are bounded: past :data:`CAP`
entries a table is cleared wholesale — memoization is an optimisation only,
so losing entries is always safe.
"""

from __future__ import annotations

from typing import Any, Dict

from ..service import instrument

#: Sentinel distinguishing "no entry" from a cached ``None``/``False``.
MISS = object()

CAP = 1 << 14

_TABLES: Dict[str, "MemoTable"] = {}


class MemoTable:
    """One bounded memo dict with hit/miss accounting."""

    __slots__ = ("name", "data", "hits", "misses", "evictions",
                 "_hit_counter", "_miss_counter")

    def __init__(self, name: str):
        self.name = name
        self.data: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._hit_counter = f"presburger.memo.{name}.hit"
        self._miss_counter = f"presburger.memo.{name}.miss"

    def get(self, key):
        """The cached value for ``key``, or :data:`MISS`."""
        value = self.data.get(key, MISS)
        if value is MISS:
            self.misses += 1
            instrument.count(self._miss_counter)
        else:
            self.hits += 1
            instrument.count(self._hit_counter)
        return value

    def put(self, key, value):
        data = self.data
        if len(data) >= CAP:
            data.clear()
            self.evictions += 1
        data[key] = value
        return value

    def clear(self) -> None:
        self.data.clear()

    def __len__(self) -> int:
        return len(self.data)


def table(name: str) -> MemoTable:
    """The (shared) memo table registered under ``name``."""
    t = _TABLES.get(name)
    if t is None:
        t = _TABLES[name] = MemoTable(name)
    return t


def stats() -> Dict[str, Dict[str, int]]:
    """Process-wide per-table hit/miss/size counts."""
    return {
        name: {
            "hits": t.hits,
            "misses": t.misses,
            "size": len(t),
            "evictions": t.evictions,
        }
        for name, t in sorted(_TABLES.items())
    }


def clear_all() -> None:
    """Empty every memo table and the LinExpr intern table.

    Counters are preserved; only cached values are dropped.  Used by tests
    and by benchmarks that need a genuinely cold path.
    """
    from .linexpr import clear_intern_table

    for t in _TABLES.values():
        t.clear()
    clear_intern_table()
