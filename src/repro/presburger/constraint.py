"""Affine constraints: equalities and inequalities over :class:`LinExpr`.

A constraint is stored in the normal form ``expr == 0`` or ``expr >= 0`` with
integer coefficients divided by their GCD.  Inequality constants are
tightened to the integer hull of the single constraint (``e >= 0`` with
``gcd(coeffs) = g`` becomes ``e' >= 0`` with ``e' = floor(e / g)`` applied to
the constant), which is exact for one constraint at a time.
"""

from __future__ import annotations

from typing import Mapping, Union

from .linexpr import LinExpr

EQ = "=="
GE = ">="


class Constraint:
    """``expr == 0`` (kind EQ) or ``expr >= 0`` (kind GE)."""

    __slots__ = ("expr", "kind", "_hash")

    def __init__(self, expr: LinExpr, kind: str):
        if kind not in (EQ, GE):
            raise ValueError(f"bad constraint kind {kind!r}")
        expr = _normalise(expr, kind)
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Constraint is immutable")

    def __getstate__(self):
        return (self.expr, self.kind)

    def __setstate__(self, state):
        object.__setattr__(self, "expr", state[0])
        object.__setattr__(self, "kind", state[1])
        object.__setattr__(self, "_hash", None)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def eq(lhs, rhs=0) -> "Constraint":
        return Constraint(LinExpr.coerce(lhs) - LinExpr.coerce(rhs), EQ)

    @staticmethod
    def ge(lhs, rhs=0) -> "Constraint":
        """lhs >= rhs"""
        return Constraint(LinExpr.coerce(lhs) - LinExpr.coerce(rhs), GE)

    @staticmethod
    def le(lhs, rhs=0) -> "Constraint":
        """lhs <= rhs"""
        return Constraint(LinExpr.coerce(rhs) - LinExpr.coerce(lhs), GE)

    @staticmethod
    def lt(lhs, rhs) -> "Constraint":
        """lhs < rhs (integer: lhs <= rhs - 1)"""
        return Constraint(LinExpr.coerce(rhs) - LinExpr.coerce(lhs) - 1, GE)

    @staticmethod
    def gt(lhs, rhs) -> "Constraint":
        """lhs > rhs (integer: lhs >= rhs + 1)"""
        return Constraint(LinExpr.coerce(lhs) - LinExpr.coerce(rhs) - 1, GE)

    # -- queries -----------------------------------------------------------

    def is_trivially_true(self) -> bool:
        if not self.expr.is_constant():
            return False
        return self.expr.const == 0 if self.kind == EQ else self.expr.const >= 0

    def is_trivially_false(self) -> bool:
        if not self.expr.is_constant():
            return False
        return self.expr.const != 0 if self.kind == EQ else self.expr.const < 0

    def involves(self, syms) -> bool:
        return self.expr.involves(syms)

    def coeff(self, sym: str) -> int:
        return self.expr.coeff(sym)

    def satisfied_by(self, binding: Mapping[str, int]) -> bool:
        val = self.expr.eval(binding)
        return val == 0 if self.kind == EQ else val >= 0

    # -- transforms --------------------------------------------------------

    def substitute(self, binding: Mapping[str, Union[LinExpr, int]]) -> "Constraint":
        return Constraint(self.expr.substitute(binding), self.kind)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.kind)

    def negated(self) -> tuple:
        """The negation as a tuple of constraints whose *union* is ¬self.

        ``¬(e >= 0)`` is ``-e - 1 >= 0``; ``¬(e == 0)`` is the union of
        ``e - 1 >= 0`` and ``-e - 1 >= 0``.
        """
        if self.kind == GE:
            return (Constraint(-self.expr - 1, GE),)
        return (Constraint(self.expr - 1, GE), Constraint(-self.expr - 1, GE))

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.kind == other.kind and self.expr == other.expr

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.kind, self.expr))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"Constraint({self})"

    def __str__(self) -> str:
        return f"{self.expr} {self.kind} 0"


def _normalise(expr: LinExpr, kind: str) -> LinExpr:
    g = expr.content()
    if g <= 1:
        # Content 0 (constant) or already GCD-reduced: nothing to divide.
        return expr
    if kind == EQ:
        if expr.const % g:
            # No integer solutions; keep a canonical falsum: 0 == 1.
            return LinExpr({}, 1)
        return expr.scale_down_exact(g)
    # GE: divide coefficients by g, floor the constant (integer tightening).
    coeffs = {s: c // g for s, c in expr.coeffs.items()}
    const = expr.const // g  # floor division: tightens toward feasibility
    return LinExpr(coeffs, const)
