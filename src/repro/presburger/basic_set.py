"""Basic sets: conjunctions of affine constraints over a :class:`SetSpace`."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from . import memo
from .constraint import GE, Constraint
from .fm import (
    FeasibilityUndecided,
    bounds_for_symbol,
    eliminate_symbols,
    eliminate_symbols_for_bounds,
    find_integer_point,
    prune_redundant,
    rational_feasible,
)
from .linexpr import LinExpr
from .space import SetSpace

_EMPTY_MEMO = memo.table("set_empty")
_PROJECT_MEMO = memo.table("project_out")
_SIMPLIFY_MEMO = memo.table("set_simplify")
_BOX_MEMO = memo.table("bounding_box")
# Specialization results are shared by every candidate of an autotune
# sweep, so they spill through the disk cache like apply_range entries.
_SPECIALIZE_MEMO = memo.table("set_specialize", spillable=True)


class BasicSet:
    """An integer set ``{ name[dims] : constraints }``.

    Constraints may mention dims and params only.  Immutable.
    """

    __slots__ = ("space", "constraints", "_empty")

    def __init__(self, space: SetSpace, constraints: Iterable[Constraint] = ()):
        constraints = tuple(c for c in constraints if not c.is_trivially_true())
        allowed = set(space.dims) | set(space.params)
        for c in constraints:
            bad = [s for s in c.expr.symbols() if s not in allowed]
            if bad:
                raise ValueError(
                    f"constraint {c} mentions {bad} outside space {space} "
                    f"(params {space.params})"
                )
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "constraints", constraints)
        object.__setattr__(self, "_empty", None)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("BasicSet is immutable")

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            object.__setattr__(self, slot, value)

    # -- constructors ------------------------------------------------------

    @classmethod
    def _make(cls, space: SetSpace, constraints: Tuple[Constraint, ...]) -> "BasicSet":
        """Fast constructor for constraints already validated against
        ``space`` (i.e. taken from an existing set/map over the same
        symbols) and already filtered of trivially-true members."""
        self = object.__new__(cls)
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "constraints", constraints)
        object.__setattr__(self, "_empty", None)
        return self

    @staticmethod
    def universe(space: SetSpace) -> "BasicSet":
        return BasicSet(space, ())

    @staticmethod
    def empty(space: SetSpace) -> "BasicSet":
        return BasicSet(space, (Constraint(LinExpr({}, -1), GE),))

    # -- basic queries -----------------------------------------------------

    def is_obviously_empty(self) -> bool:
        return any(c.is_trivially_false() for c in self.constraints)

    def is_empty(self) -> bool:
        """Exact integer emptiness (falls back to rational when undecided)."""
        if self._empty is not None:
            return self._empty
        # Emptiness depends on the constraints alone, so structurally equal
        # sets (rebuilt per pass) share one verdict through the memo table.
        key = self.constraints
        result = _EMPTY_MEMO.get(key)
        if result is memo.MISS:
            if self.is_obviously_empty():
                result = True
            else:
                try:
                    result = find_integer_point(list(self.constraints)) is None
                except FeasibilityUndecided:
                    # Rational feasibility is an over-approximation: non-empty.
                    result = False
            _EMPTY_MEMO.put(key, result)
        object.__setattr__(self, "_empty", result)
        return result

    def sample(self) -> Optional[Dict[str, int]]:
        """An integer point (dims and any free params), or None if empty."""
        return find_integer_point(list(self.constraints), list(self.space.dims) + list(self.space.params))

    def contains(self, point: Mapping[str, int]) -> bool:
        return all(c.satisfied_by(point) for c in self.constraints)

    def involves(self, syms: Iterable[str]) -> bool:
        syms = list(syms)
        return any(c.involves(syms) for c in self.constraints)

    # -- algebra -----------------------------------------------------------

    def intersect(self, other: "BasicSet") -> "BasicSet":
        if self.space != other.space:
            raise ValueError(f"space mismatch: {self.space} vs {other.space}")
        return BasicSet._make(self.space, self.constraints + other.constraints)

    def project_out(self, dims: Sequence[str]) -> "BasicSet":
        """Existentially quantify ``dims`` (Fourier–Motzkin)."""
        missing = [d for d in dims if d not in self.space.dims]
        if missing:
            raise ValueError(f"cannot project out non-dims {missing} of {self.space}")
        key = (self.space, self.constraints, tuple(dims))
        cached = _PROJECT_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        cons = eliminate_symbols(list(self.constraints), list(dims))
        return _PROJECT_MEMO.put(key, BasicSet(self.space.drop_dims(dims), cons))

    def fix(self, binding: Mapping[str, int]) -> "BasicSet":
        """Substitute concrete integer values for dims and/or params."""
        cons = [c.substitute(binding) for c in self.constraints]
        dims = tuple(d for d in self.space.dims if d not in binding)
        params = tuple(p for p in self.space.params if p not in binding)
        return BasicSet(SetSpace(self.space.name, dims, params), cons)

    def fix_params(self, binding: Mapping[str, int]) -> "BasicSet":
        binding = {k: v for k, v in binding.items() if k in self.space.params}
        return self.fix(binding)

    def specialize(self, binding: Mapping[str, int]) -> "BasicSet":
        """Exact substitution of integer values for *parameters*.

        Semantically identical to :meth:`fix_params`, but memoized under a
        structural key: one parametric set specialized at many bindings
        (the autotune sweep) pays the substitution once per binding and the
        construction once overall.  Every constraint re-normalizes through
        :meth:`Constraint.substitute`, so the result is the same object the
        concrete pipeline would have built for unit-coefficient systems.
        """
        binding = {
            k: int(v) for k, v in binding.items() if k in self.space.params
        }
        if not binding:
            return self
        key = (self.space, self.constraints, tuple(sorted(binding.items())))
        cached = _SPECIALIZE_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        params = tuple(p for p in self.space.params if p not in binding)
        result = BasicSet(
            SetSpace(self.space.name, self.space.dims, params),
            [c.substitute(binding) for c in self.constraints],
        )
        return _SPECIALIZE_MEMO.put(key, result)

    def rename_dims(self, mapping: Mapping[str, str]) -> "BasicSet":
        return BasicSet(
            self.space.rename_dims(dict(mapping)),
            [c.rename(mapping) for c in self.constraints],
        )

    def with_name(self, name: str) -> "BasicSet":
        return BasicSet(
            SetSpace(name, self.space.dims, self.space.params), self.constraints
        )

    def add_constraints(self, constraints: Iterable[Constraint]) -> "BasicSet":
        return BasicSet(self.space, self.constraints + tuple(constraints))

    def simplify(self) -> "BasicSet":
        if self.is_obviously_empty():
            return BasicSet.empty(self.space)
        key = (self.space, self.constraints)
        cached = _SIMPLIFY_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        result = BasicSet(self.space, prune_redundant(list(self.constraints)))
        return _SIMPLIFY_MEMO.put(key, result)

    def is_subset(self, other: "BasicSet") -> bool:
        """self ⊆ other, exactly over the integers for bounded sets."""
        if self.space.dims != other.space.dims:
            raise ValueError("space mismatch in is_subset")
        for c in other.constraints:
            for neg in c.negated():
                probe = BasicSet(self.space, self.constraints + (neg,))
                if not probe.is_empty():
                    return False
        return True

    def is_subset_rational(self, other: "BasicSet") -> bool:
        """Sound under-approximation of ⊆ using rational emptiness only.

        ``True`` guarantees integer containment (rational emptiness implies
        integer emptiness); ``False`` may be a false negative.  Used where
        containment only prunes redundancy (coalescing).
        """
        if self.space.dims != other.space.dims:
            raise ValueError("space mismatch in is_subset_rational")
        for c in other.constraints:
            for neg in c.negated():
                probe = list(self.constraints) + [neg]
                if rational_feasible(probe):
                    return False
        return True

    # -- bounds / counting -------------------------------------------------

    def dim_bounds(
        self, dim: str, binding: Mapping[str, int]
    ) -> Tuple[Optional[int], Optional[int]]:
        """Integer bounds of ``dim`` once all other symbols are bound."""
        lo, hi, _ = bounds_for_symbol(list(self.constraints), dim, dict(binding))
        return lo, hi

    def bounding_box(
        self, params: Mapping[str, int] | None = None
    ) -> Dict[str, Tuple[Optional[int], Optional[int]]]:
        """Per-dimension bounds of the rational projection onto each dim."""
        key = (self.space, self.constraints, tuple(sorted((params or {}).items())))
        cached = _BOX_MEMO.get(key)
        if cached is not memo.MISS:
            return dict(cached)
        fixed = self.fix_params(params or {})
        box: Dict[str, Tuple[Optional[int], Optional[int]]] = {}
        for dim in fixed.space.dims:
            others = [d for d in fixed.space.dims if d != dim]
            # The box only consumes bounds of the rational projection, so
            # the pruning eliminator (identical rational set, smaller
            # constraint lists) is safe here.
            proj = eliminate_symbols_for_bounds(list(fixed.constraints), others)
            lo, hi, _ = bounds_for_symbol(proj, dim, {})
            box[dim] = (lo, hi)
        _BOX_MEMO.put(key, box)
        return dict(box)

    def box_volume(self, params: Mapping[str, int] | None = None) -> int:
        """Volume of the bounding box (an upper bound on the point count)."""
        total = 1
        for lo, hi in self.bounding_box(params).values():
            if lo is None or hi is None:
                raise ValueError(f"unbounded set {self}")
            if hi < lo:
                return 0
            total *= hi - lo + 1
        return total

    def count_points(self, params: Mapping[str, int] | None = None) -> int:
        """Exact number of integer points (enumerative; set must be bounded)."""
        from .enumerate import enumerate_points

        return sum(1 for _ in enumerate_points(self, params or {}))

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, BasicSet):
            return NotImplemented
        if self.space != other.space:
            return False
        return self.is_subset(other) and other.is_subset(self)

    def __hash__(self) -> int:  # structural hash; semantic eq is richer
        return hash((self.space, frozenset(self.constraints)))

    def __repr__(self) -> str:
        return f"BasicSet({self})"

    def __str__(self) -> str:
        cons = " and ".join(str(c) for c in self.constraints)
        body = str(self.space) + (f" : {cons}" if cons else "")
        params = f"[{', '.join(self.space.params)}] -> " if self.space.params else ""
        return f"{params}{{ {body} }}"
