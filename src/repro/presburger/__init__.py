"""``repro.presburger`` — an exact integer set library (isl-lite).

This subpackage implements the subset of isl's functionality that the
paper's Algorithms 1–3 rely on: affine sets and maps with exact integer
semantics, unions keyed by tuple names, Fourier–Motzkin projection, and the
elementary operations (intersect, union, subtract, apply, reverse, domain,
range) used to compute memory footprints, upwards-exposed data and
extension schedules.
"""

from . import memo
from .basic_map import BasicMap
from .basic_set import BasicSet
from .constraint import EQ, GE, Constraint
from .enumerate import EnumerationError, enumerate_points, enumerate_set_points
from .fm import FeasibilityUndecided
from .linexpr import C, LinExpr, V
from .map_ import Map
from .parse import (
    ParseError,
    parse_map,
    parse_set,
    parse_union_map,
    parse_union_set,
)
from .set_ import Set, lexmax, lexmin
from .space import MapSpace, SetSpace, fresh_names
from .union import UnionMap, UnionSet

__all__ = [
    "BasicMap",
    "BasicSet",
    "C",
    "Constraint",
    "EQ",
    "EnumerationError",
    "FeasibilityUndecided",
    "GE",
    "LinExpr",
    "Map",
    "MapSpace",
    "ParseError",
    "Set",
    "lexmax",
    "lexmin",
    "memo",
    "SetSpace",
    "UnionMap",
    "UnionSet",
    "V",
    "fresh_names",
    "parse_map",
    "parse_set",
    "parse_union_map",
    "parse_union_set",
]
