"""Spaces for integer sets and maps.

A *space* names the dimensions an affine object ranges over.  Sets live in a
``SetSpace`` (a tuple name plus dimension names); maps live in a ``MapSpace``
(an input tuple and an output tuple).  Parameter symbols are shared by all
spaces in a computation and are carried separately.

Spaces are immutable value objects; all the algebra in this package checks
space compatibility before combining constraint systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple


def _as_tuple(names: Iterable[str]) -> Tuple[str, ...]:
    names = tuple(names)
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate dimension names: {names}")
    for n in names:
        if not isinstance(n, str) or not n:
            raise ValueError(f"dimension names must be non-empty strings, got {n!r}")
    return names


@dataclass(frozen=True)
class SetSpace:
    """The space of a set: an optional tuple name and ordered dimension names."""

    name: str
    dims: Tuple[str, ...]
    params: Tuple[str, ...] = field(default=())

    def __post_init__(self):
        object.__setattr__(self, "dims", _as_tuple(self.dims))
        object.__setattr__(self, "params", _as_tuple(self.params))
        overlap = set(self.dims) & set(self.params)
        if overlap:
            raise ValueError(f"names used as both dim and param: {sorted(overlap)}")

    @property
    def n_dims(self) -> int:
        return len(self.dims)

    def rename_dims(self, mapping: dict) -> "SetSpace":
        return SetSpace(self.name, tuple(mapping.get(d, d) for d in self.dims), self.params)

    def with_params(self, params: Iterable[str]) -> "SetSpace":
        return SetSpace(self.name, self.dims, tuple(params))

    def drop_dims(self, drop: Iterable[str]) -> "SetSpace":
        drop = set(drop)
        return SetSpace(self.name, tuple(d for d in self.dims if d not in drop), self.params)

    def __str__(self) -> str:
        return f"{self.name}[{', '.join(self.dims)}]"


@dataclass(frozen=True)
class MapSpace:
    """The space of a map: an input tuple and an output tuple."""

    in_name: str
    in_dims: Tuple[str, ...]
    out_name: str
    out_dims: Tuple[str, ...]
    params: Tuple[str, ...] = field(default=())

    def __post_init__(self):
        object.__setattr__(self, "in_dims", _as_tuple(self.in_dims))
        object.__setattr__(self, "out_dims", _as_tuple(self.out_dims))
        object.__setattr__(self, "params", _as_tuple(self.params))
        all_names = self.in_dims + self.out_dims
        if len(set(all_names)) != len(all_names):
            raise ValueError(
                f"input and output dims must be disjoint: {self.in_dims} vs {self.out_dims}"
            )
        overlap = set(all_names) & set(self.params)
        if overlap:
            raise ValueError(f"names used as both dim and param: {sorted(overlap)}")

    @property
    def n_in(self) -> int:
        return len(self.in_dims)

    @property
    def n_out(self) -> int:
        return len(self.out_dims)

    @property
    def domain_space(self) -> SetSpace:
        return SetSpace(self.in_name, self.in_dims, self.params)

    @property
    def range_space(self) -> SetSpace:
        return SetSpace(self.out_name, self.out_dims, self.params)

    def reversed(self) -> "MapSpace":
        return MapSpace(self.out_name, self.out_dims, self.in_name, self.in_dims, self.params)

    def with_params(self, params: Iterable[str]) -> "MapSpace":
        return MapSpace(self.in_name, self.in_dims, self.out_name, self.out_dims, tuple(params))

    def rename_dims(self, mapping: dict) -> "MapSpace":
        return MapSpace(
            self.in_name,
            tuple(mapping.get(d, d) for d in self.in_dims),
            self.out_name,
            tuple(mapping.get(d, d) for d in self.out_dims),
            self.params,
        )

    def __str__(self) -> str:
        return (
            f"{self.in_name}[{', '.join(self.in_dims)}] -> "
            f"{self.out_name}[{', '.join(self.out_dims)}]"
        )


def fresh_names(base: Iterable[str], taken: Iterable[str]) -> Tuple[str, ...]:
    """Rename ``base`` names so that none collides with ``taken``.

    Used when joining two constraint systems that may share dimension names.
    """
    taken = set(taken)
    out = []
    for name in base:
        candidate = name
        suffix = 0
        while candidate in taken:
            suffix += 1
            candidate = f"{name}_{suffix}"
        taken.add(candidate)
        out.append(candidate)
    return tuple(out)
