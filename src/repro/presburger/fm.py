"""Fourier–Motzkin elimination and integer feasibility machinery.

These functions operate on bare lists of :class:`Constraint` objects; the
set/map classes layer space bookkeeping on top.

FM elimination is exact over the rationals.  Over the integers it is exact
whenever the eliminated symbol has a unit coefficient in every lower or every
upper bound — which holds for all constraint systems this package builds
(loop bounds, tile containment with constant tile sizes, stencil footprints).
Integer feasibility is decided exactly for bounded systems by FM-guided
backtracking search.

Two families of fast paths keep the hot loop cheap:

* :func:`eliminate_symbol` short-circuits the *box* case — every bound on
  the eliminated symbol is a single-symbol constraint (rectangular tile
  containment) — where all pairwise combinations are constants and the
  feasible ones vanish, so no combination needs to be materialised;
* feasibility-only entry points (:func:`rational_feasible`,
  :func:`eliminate_symbols_for_bounds`) prune constraints that are
  rationally implied by cheap interval propagation between elimination
  rounds.  The pruning preserves the rational set exactly, so feasibility
  verdicts and rational-projection bounds are unchanged while the quadratic
  FM blowup is cut at every round.
"""

from __future__ import annotations

from math import ceil, floor, gcd
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import memo
from .constraint import EQ, GE, Constraint
from .linexpr import LinExpr
from .symtab import sym_name
from ..service import instrument

#: Dimension-count histogram buckets for FM eliminations (most systems in
#: this package project out 1-4 symbols; tile bands push the tail higher).
_DIM_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16)

_ELIM_MEMO = memo.table("fm_eliminate")
_ELIM_BOUNDS_MEMO = memo.table("fm_eliminate_bounds")


class FeasibilityUndecided(Exception):
    """Raised when integer feasibility search exceeds its budget."""


def _dedupe(constraints: Iterable[Constraint]) -> List[Constraint]:
    seen = set()
    out = []
    for c in constraints:
        if c.is_trivially_true():
            continue
        if c not in seen:
            seen.add(c)
            out.append(c)
    return out


def eliminate_symbol(constraints: Sequence[Constraint], sym: str) -> List[Constraint]:
    """Project ``sym`` out of the conjunction of ``constraints``."""
    # Prefer substitution through an equality when available: exact over Z.
    eq = None
    for c in constraints:
        if c.kind == EQ and c.coeff(sym) != 0:
            if eq is None or abs(c.coeff(sym)) < abs(eq.coeff(sym)):
                eq = c
            if abs(c.coeff(sym)) == 1:
                eq = c
                break
    if eq is not None:
        return _dedupe(_eliminate_via_equality(constraints, sym, eq))

    lowers: List[Tuple[int, Constraint]] = []  # a > 0 in a*sym + e >= 0
    uppers: List[Tuple[int, Constraint]] = []  # a < 0 in a*sym + e >= 0
    rest: List[Constraint] = []
    box = True  # every bound on sym mentions sym alone
    for c in constraints:
        a = c.coeff(sym)
        if a == 0:
            rest.append(c)
        elif a > 0:
            lowers.append((a, c))
            box = box and len(c.expr.terms) == 1 and a == 1
        else:
            uppers.append((-a, c))
            box = box and len(c.expr.terms) == 1 and a == -1
    if box and lowers and uppers:
        # Box fast path: all bounds are single-symbol, so every pairwise
        # combination is a constant.  Normalisation already reduced the
        # coefficient to +/-1, hence the bounds are exactly
        # ``sym >= -cl`` and ``sym <= cu``; if max(-cl) <= min(cu) each
        # combination is trivially true and the pairwise loop contributes
        # nothing.  Fall through to the generic loop on the (rare)
        # infeasible box so the emitted falsum constants stay identical.
        lo = max(-c.expr.const for _, c in lowers)
        hi = min(c.expr.const for _, c in uppers)
        if lo <= hi:
            instrument.count("presburger.fm_box_fast_path")
            return _dedupe(rest)
    for al, cl in lowers:
        for au, cu in uppers:
            # cl: al*sym + el >= 0, cu: -au*sym + eu >= 0
            # combine: au*el + al*eu >= 0
            el = cl.expr - LinExpr({sym: al})
            eu = cu.expr + LinExpr({sym: au})
            rest.append(Constraint(el * au + eu * al, GE))
    return _dedupe(rest)


def _eliminate_via_equality(
    constraints: Sequence[Constraint], sym: str, eq: Constraint
) -> List[Constraint]:
    a = eq.coeff(sym)
    out = []
    if abs(a) == 1:
        # sym = -sign(a) * (eq.expr - a*sym)
        rest_expr = eq.expr - LinExpr({sym: a})
        replacement = rest_expr * (-1 if a == 1 else 1)
        binding = {sym: replacement}
        for c in constraints:
            if c is eq:
                continue
            out.append(c.substitute(binding))
        return out
    # General integer-exact combination: add the right multiple of eq.expr
    # (which equals zero) to cancel sym.  The other constraint is scaled by
    # |a|/gcd(a, b) — the GCD-reduced multiplier — which is positive (so the
    # inequality direction is preserved) and keeps intermediate coefficients
    # as small as possible before re-normalisation.
    for c in constraints:
        if c is eq:
            continue
        b = c.coeff(sym)
        if b == 0:
            out.append(c)
            continue
        g = gcd(abs(a), abs(b))
        m = abs(a) // g
        k = -(b * m) // a
        out.append(Constraint(c.expr * m + eq.expr * k, c.kind))
    # |a| > 1: sym must exist with a*sym = -rest; record divisibility loss —
    # the projection may be a rational over-approximation.  For the constraint
    # systems in this package |a| is always 1 or a tile size dividing evenly.
    return out


def eliminate_symbols(
    constraints: Sequence[Constraint], syms: Sequence[str]
) -> List[Constraint]:
    instrument.count("presburger.fm_eliminate", len(syms))
    if syms:
        instrument.observe(
            "presburger.fm.eliminated_dims", len(syms), buckets=_DIM_BUCKETS
        )
    key = (tuple(constraints), tuple(syms))
    cached = _ELIM_MEMO.get(key)
    if cached is not memo.MISS:
        return list(cached)
    cur = list(constraints)
    for sym in syms:
        cur = eliminate_symbol(cur, sym)
    _ELIM_MEMO.put(key, tuple(cur))
    return cur


def eliminate_symbols_for_bounds(
    constraints: Sequence[Constraint], syms: Sequence[str]
) -> List[Constraint]:
    """Like :func:`eliminate_symbols` but only the *rational set* of the
    result is guaranteed, not its syntactic form.

    Interval-implied constraints are pruned between rounds, which keeps the
    quadratic FM blowup in check.  Use only where the caller consumes
    feasibility or bounds (both are representation-independent), never where
    the projected constraints become part of a set that user code sees.
    """
    instrument.count("presburger.fm_eliminate", len(syms))
    if syms:
        instrument.observe(
            "presburger.fm.eliminated_dims", len(syms), buckets=_DIM_BUCKETS
        )
    key = (tuple(constraints), tuple(syms))
    cached = _ELIM_BOUNDS_MEMO.get(key)
    if cached is not memo.MISS:
        return list(cached)
    cur = prune_implied_by_intervals(_dedupe(list(constraints)))
    for sym in syms:
        cur = eliminate_symbol(cur, sym)
        if len(cur) > 8:
            cur = prune_implied_by_intervals(cur)
    _ELIM_BOUNDS_MEMO.put(key, tuple(cur))
    return cur


def constraint_symbols(constraints: Iterable[Constraint]) -> List[str]:
    seen: Dict[str, None] = {}
    for c in constraints:
        for s in c.expr.symbols():
            seen.setdefault(s)
    return list(seen)


# -- interval-propagation pruning -----------------------------------------

Interval = Tuple[Optional[int], Optional[int]]


def interval_bounds(constraints: Sequence[Constraint]) -> Dict[str, Interval]:
    """Per-symbol integer bounds implied by the single-symbol constraints.

    Equalities with a unit coefficient pin the symbol; inequalities tighten
    one side.  Symbols without single-symbol bounds are absent.
    """
    bounds: Dict[str, Interval] = {}
    for c in constraints:
        terms = c.expr.terms
        if len(terms) != 1:
            continue
        sid, a = terms[0]
        name = sym_name(sid)
        const = c.expr.const
        lo, hi = bounds.get(name, (None, None))
        if c.kind == EQ:
            # a*s + const == 0 (normalisation leaves |a| == 1 or a falsum).
            if const % a:
                lo, hi = 1, 0  # empty
            else:
                v = -const // a
                lo = v if lo is None else max(lo, v)
                hi = v if hi is None else min(hi, v)
        elif a > 0:
            b = ceil(-const / a)
            lo = b if lo is None else max(lo, b)
        else:
            b = floor(const / -a)
            hi = b if hi is None else min(hi, b)
        bounds[name] = (lo, hi)
    return bounds


def implied_by_intervals(c: Constraint, bounds: Dict[str, Interval]) -> bool:
    """Whether ``c`` holds everywhere on the box described by ``bounds``.

    Sound over both Q and Z: any point satisfying the single-symbol
    constraints the box came from also satisfies ``c``.
    """
    if c.kind != GE:
        return False
    lo = c.expr.const
    for sid, coef in c.expr.terms:
        b = bounds.get(sym_name(sid))
        if b is None:
            return False
        blo, bhi = b
        if coef > 0:
            if blo is None:
                return False
            lo += coef * blo
        else:
            if bhi is None:
                return False
            lo += coef * bhi
    return lo >= 0


def prune_implied_by_intervals(
    constraints: Sequence[Constraint],
) -> List[Constraint]:
    """Drop constraints rationally implied via cheap interval propagation.

    Two reductions, both preserving the rational (and integer) solution set
    exactly:

    * among inequalities sharing one coefficient pattern only the tightest
      constant survives (``e + c >= 0`` with minimal ``c``);
    * a multi-symbol inequality whose minimum over the single-symbol
      bounding box is non-negative is implied by those bounds and dropped.
    """
    tightest: Dict[tuple, int] = {}
    for c in constraints:
        if c.kind == GE:
            key = c.expr.terms
            const = c.expr.const
            if key not in tightest or const < tightest[key]:
                tightest[key] = const
    bounds = interval_bounds(constraints)
    out: List[Constraint] = []
    for c in constraints:
        if c.kind == GE:
            if c.expr.const != tightest.get(c.expr.terms):
                instrument.count("presburger.prune_interval")
                continue  # a tighter same-pattern constraint exists
            if len(c.expr.terms) > 1 and implied_by_intervals(c, bounds):
                instrument.count("presburger.prune_interval")
                continue
        out.append(c)
    return out


def rational_feasible(constraints: Sequence[Constraint]) -> bool:
    """Whether the conjunction has a rational solution (exact via FM)."""
    cur = prune_implied_by_intervals(_dedupe(constraints))
    for c in cur:
        if c.is_trivially_false():
            return False
    syms = constraint_symbols(cur)
    for sym in syms:
        cur = eliminate_symbol(cur, sym)
        for c in cur:
            if c.is_trivially_false():
                return False
        if len(cur) > 8:
            cur = prune_implied_by_intervals(cur)
    return True


def bounds_for_symbol(
    constraints: Sequence[Constraint], sym: str, binding: Dict[str, int]
) -> Tuple[Optional[int], Optional[int], bool]:
    """Integer bounds for ``sym`` under ``binding`` of all other symbols.

    Returns ``(lower, upper, exact)``; ``None`` means unbounded on that side.
    ``exact`` is False when equality constraints pin the value inconsistently.
    """
    lo: Optional[int] = None
    hi: Optional[int] = None
    for c in constraints:
        a = c.coeff(sym)
        if a == 0:
            continue
        rest = c.expr - LinExpr({sym: a})
        val = rest.eval(binding)
        if c.kind == EQ:
            # a*sym + val == 0  ->  sym == -val / a
            if val % a != 0:
                return 1, 0, True  # empty
            point = -val // a
            lo = point if lo is None else max(lo, point)
            hi = point if hi is None else min(hi, point)
        elif a > 0:
            # sym >= ceil(-val / a)
            bound = ceil(-val / a)
            lo = bound if lo is None else max(lo, bound)
        else:
            # sym <= floor(val / -a)
            bound = floor(val / -a)
            hi = bound if hi is None else min(hi, bound)
    return lo, hi, True


def find_integer_point(
    constraints: Sequence[Constraint],
    syms: Optional[Sequence[str]] = None,
    max_steps: int = 50000,
    max_range: int = 4096,
) -> Optional[Dict[str, int]]:
    """Search for an integer solution; ``None`` when provably none exists.

    Raises :class:`FeasibilityUndecided` if the search budget is exhausted
    (unbounded or enormous systems).
    """
    instrument.count("presburger.integer_sample")
    cur = _dedupe(constraints)
    for c in cur:
        if c.is_trivially_false():
            return None
    if syms is None:
        syms = constraint_symbols(cur)
    syms = [s for s in syms if any(c.coeff(s) for c in cur)]
    if not syms:
        return {}

    # Build the elimination tower: towers[i] involves only syms[:i].  A
    # trivially-false constraint surfacing anywhere (in particular in
    # towers[0], the full projection) proves rational infeasibility.
    towers: List[List[Constraint]] = [None] * (len(syms) + 1)  # type: ignore
    towers[len(syms)] = cur
    for i in range(len(syms) - 1, -1, -1):
        towers[i] = eliminate_symbol(towers[i + 1], syms[i])
        for c in towers[i]:
            if c.is_trivially_false():
                return None

    steps = 0

    def descend(level: int, binding: Dict[str, int]) -> Optional[Dict[str, int]]:
        nonlocal steps
        if level == len(syms):
            if all(c.satisfied_by(binding) for c in cur):
                return dict(binding)
            return None
        sym = syms[level]
        lo, hi, _ = bounds_for_symbol(towers[level + 1], sym, binding)
        if lo is None and hi is None:
            lo, hi = 0, 0
        elif lo is None:
            lo = hi - max_range
        elif hi is None:
            hi = lo + max_range
        if hi - lo > max_range:
            hi = lo + max_range
        for val in range(lo, hi + 1):
            steps += 1
            if steps > max_steps:
                raise FeasibilityUndecided(
                    f"integer search budget exhausted over {syms}"
                )
            binding[sym] = val
            found = descend(level + 1, binding)
            if found is not None:
                return found
        binding.pop(sym, None)
        return None

    result = descend(0, {})
    if result is None and steps > max_steps * 0.9:  # pragma: no cover - safety
        raise FeasibilityUndecided("search terminated near budget; inconclusive")
    return result


def prune_redundant(constraints: Sequence[Constraint]) -> List[Constraint]:
    """Drop constraints implied (rationally) by the others.

    Constraints are GCD-normalised at construction time; here each
    inequality is tested against the rest — first with the cheap interval
    check (same verdict, no FM), then with the exact rational probe.
    """
    cur = _dedupe(constraints)
    kept: List[Constraint] = list(cur)
    i = 0
    while i < len(kept):
        candidate = kept[i]
        if candidate.kind == EQ:
            i += 1
            continue
        others = kept[:i] + kept[i + 1 :]
        if implied_by_intervals(candidate, interval_bounds(others)):
            instrument.count("presburger.prune_interval")
            kept.pop(i)
            continue
        negs = candidate.negated()
        implied = all(not rational_feasible(list(others) + [n]) for n in negs)
        if implied:
            kept.pop(i)
        else:
            i += 1
    return kept
