"""Tile-size auto-tuning (the PolyMage strategy used for Table I).

The paper inherits PolyMage's auto-tuner: try every tile-size combination
from {8, 16, 32, 64, 128, 256, 512} per dimension and keep the fastest.
Because the paper's pass needs tile sizes only for the *live-out* spaces
(intermediate shapes are derived from the data space), the search space
stays two-dimensional regardless of pipeline depth — one of the
practical benefits Section III calls out ("reduce the magnitude of the
tile size space").

This tuner evaluates candidates against the analytical machine models,
which plays the role of PolyMage's empirical re-runs.  Two search modes:

* ``"exhaustive"`` (default) — every in-range grid point is compiled
  (through the batch driver + parametric specialization) and costed;
* ``"pruned"`` — a learned ranker (:mod:`repro.learn`, fit on the
  :mod:`repro.data` candidate store) scores the whole grid from
  compile-free features and only the top-k candidates get exact
  specialization; the tuner falls back to the exhaustive sweep when no
  model is available or its coverage of this program is too thin.

Every evaluated candidate can be appended to the dataset (``collect=``,
or ambiently via ``$REPRO_DATASET``), so ordinary sweeps keep growing the
training set their own pruning feeds on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import Program

CANDIDATE_SIZES = (8, 16, 32, 64, 128, 256, 512)

SEARCH_MODES = ("exhaustive", "pruned")

#: Denominator of the default top-k cut: rank the grid, keep 1/8th.
PRUNE_FRACTION = 8


@dataclass
class TuneResult:
    best_sizes: Tuple[int, ...]
    best_time: float
    evaluations: Dict[Tuple[int, ...], float] = field(default_factory=dict)
    failures: Dict[Tuple[int, ...], str] = field(default_factory=dict)
    tuning_seconds: float = 0.0
    #: Which search produced the result: ``"exhaustive"``, or ``"pruned"``
    #: when the learned cut actually applied (a pruned *request* that
    #: fell back reads ``"exhaustive"`` with a :attr:`fallback_reason`).
    search: str = "exhaustive"
    #: Model scores for the ranked grid (pruned mode), candidate -> score.
    model_scores: Dict[Tuple[int, ...], float] = field(default_factory=dict)
    #: Grid points the ranker cut before exact evaluation.
    pruned_out: int = 0
    #: Why a pruned request fell back to exhaustive (``None`` otherwise).
    fallback_reason: Optional[str] = None

    def top(self, k: int = 5) -> List[Tuple[Tuple[int, ...], float]]:
        """The k cheapest evaluated candidates; cost ties break on the
        tile-size tuple so the order is insertion-independent."""
        return sorted(self.evaluations.items(), key=lambda kv: (kv[1], kv[0]))[:k]

    @property
    def exact_evaluations(self) -> int:
        """How many candidates went through exact specialization (costed
        or failed compiling — skipped-by-bounds ones never did)."""
        return len(self.evaluations) + sum(
            1 for r in self.failures.values() if not r.startswith("skipped:")
        )


def liveout_extent_bounds(program: Program, dims: int) -> List[int]:
    """Per-dimension tile-size bounds (re-exported from the featurizer —
    the tuner and the ranker must agree on extents)."""
    from ..learn.features import liveout_extent_bounds as _bounds

    return _bounds(program, dims)


def default_top_k(n_candidates: int) -> int:
    """The pruned mode's exact-evaluation budget for a grid of ``n``."""
    return max(2, n_candidates // PRUNE_FRACTION)


def autotune_tile_sizes(
    program: Program,
    options=None,
    *,
    threads: int = 32,
    candidates: Sequence[int] = CANDIDATE_SIZES,
    dims: int = 2,
    max_extent: Optional[int] = None,
    search: str = "exhaustive",
    model=None,
    top_k: Optional[int] = None,
    collect=None,
    **removed,
) -> TuneResult:
    """Search live-out tile sizes against the cost model.

    Candidate tile sizes are bounded per dimension by the *minimum*
    live-out extent in that dimension (out-of-range grid points are
    recorded in :attr:`TuneResult.failures` as skipped, never silently
    explored); an explicit ``max_extent`` applies one bound to every
    dimension instead.

    Candidates are evaluated through the batch-compile driver
    (:func:`repro.service.compile_batch`): ``mode`` picks the dispatch
    strategy (``"serial"`` by default, ``"auto"``/``"process"``/
    ``"thread"`` fan out over ``jobs`` workers) and an optional ``cache``
    (a :class:`repro.service.CompileCache`) reuses compile results across
    candidates, runs and processes.  The cost model is deterministic, so
    every mode returns bit-identical ``best_sizes``/``best_time``.

    ``search="pruned"`` ranks the grid with a learned model (``model``:
    a :class:`repro.learn.RankModel`, a pickle path, or ``None`` for the
    default ``$REPRO_AUTOTUNE_MODEL`` / cache-dir model) and runs exact
    specialization only on the ``top_k`` best-ranked candidates, falling
    back to the exhaustive sweep when the model is missing, stale or has
    coverage below its ``min_coverage`` for this program.

    ``collect`` appends one dataset record per evaluated candidate
    (:mod:`repro.data`): ``None`` defers to ``$REPRO_DATASET``, ``True``
    uses the default store, a path or :class:`~repro.data.Dataset`
    selects one explicitly, ``False`` disables collection.

    A :class:`repro.CompileOptions` supplies ``target``/``startup``/
    ``mode``/``jobs``/``cache`` in one validated bundle (its
    ``tile_sizes`` field is ignored — tile sizes are what is being
    searched).  ``None`` tunes for the cpu target with serial dispatch —
    a sweep's requests are tiny and fork cost dominates, so the
    no-options default stays ``"serial"`` rather than ``CompileOptions``'
    ``"auto"``.  The tuner-specific knobs (``threads``, ``candidates``,
    ``dims``, ``max_extent``, ``search``, ``model``, ``top_k``,
    ``collect``) remain keyword arguments here: they configure the
    search, not the compiles.  The retired per-keyword compile spellings
    raise a ``TypeError`` pointing at ``CompileOptions``.
    """
    from ..data import resolve_dataset
    from ..options import resolve_options
    from ..service import instrument

    if search not in SEARCH_MODES:
        raise ValueError(
            f"unknown search mode {search!r}; expected one of {SEARCH_MODES}"
        )

    opts = resolve_options(options, "autotune_tile_sizes", **removed)
    if options is None:
        opts = opts.replace(mode="serial")
    spec = opts.target

    if max_extent is not None:
        bounds = [max_extent] * dims
    else:
        bounds = liveout_extent_bounds(program, dims)

    try:
        dataset = resolve_dataset(collect)
    except (ValueError, OSError):
        dataset = None
    works: Optional[Dict[Tuple[int, ...], Dict[str, float]]] = (
        {} if dataset is not None else None
    )

    t0 = time.perf_counter()
    result = TuneResult(best_sizes=(), best_time=float("inf"), search=search)
    combos: List[Tuple[int, ...]] = []
    for sizes in _combinations(list(candidates), dims):
        over = next((d for d, s in enumerate(sizes) if s > bounds[d]), None)
        if over is None:
            combos.append(sizes)
        else:
            result.failures[sizes] = (
                f"skipped: tile size {sizes[over]} exceeds live-out "
                f"extent {bounds[over]} in dim {over}"
            )

    with instrument.span("autotune", search=search, candidates=len(combos)):
        instrument.count("autotune.requests")
        chosen = combos
        if search == "pruned":
            instrument.count("autotune.pruned.requests")
            chosen = _rank_and_cut(
                program, combos, dims, threads, spec.name, bounds,
                model, top_k, result,
            )
            if result.fallback_reason is not None:
                instrument.count("autotune.pruned.fallbacks")
                result.search = "exhaustive"
                chosen = combos
            else:
                result.pruned_out = len(combos) - len(chosen)
                instrument.count("autotune.pruned.exact_evals", len(chosen))
                instrument.count("autotune.pruned.pruned_out", result.pruned_out)

        _evaluate(program, chosen, threads, spec, opts, result, works)
        if (
            result.search == "pruned"
            and not result.evaluations
            and len(chosen) < len(combos)
        ):
            # Every ranked candidate was infeasible: rescue with the rest
            # of the grid rather than failing a search the exhaustive
            # sweep would have completed.
            instrument.count("autotune.pruned.rescues")
            result.fallback_reason = "all top-k candidates infeasible"
            result.search = "exhaustive"
            result.pruned_out = 0
            kept = set(chosen)
            remaining = [c for c in combos if c not in kept]
            _evaluate(program, remaining, threads, spec, opts, result, works)
        instrument.count("autotune.exact_evals", len(result.evaluations))

    result.tuning_seconds = time.perf_counter() - t0
    if not result.evaluations:
        raise RuntimeError(
            f"no feasible tile size among "
            f"{len(combos) + len(result.failures)} candidates: "
            f"{result.failures}"
        )
    if dataset is not None:
        _collect_records(
            dataset, program, result, threads, spec.name, opts.startup,
            dims, bounds, works or {},
        )
    return result


def _evaluate(
    program: Program,
    combos: Sequence[Tuple[int, ...]],
    threads: int,
    spec,
    opts,
    result: TuneResult,
    works: Optional[Dict[Tuple[int, ...], Dict[str, float]]] = None,
) -> None:
    """Exactly specialize and cost ``combos``, folding into ``result``.

    When ``works`` is given (dataset collection is on), the cost-model
    internals of each analyzed schedule are captured alongside — the
    compile is in hand here, so this costs a few sums, not a recompile.
    """
    from ..machine import analyze_optimized, cpu_time, gpu_time, work_features
    from ..service.driver import CompileRequest, compile_batch

    if not combos:
        return
    requests = [
        CompileRequest(
            program, target=spec, tile_sizes=sizes, startup=opts.startup,
            tag="autotune",
        )
        for sizes in combos
    ]
    outcomes = compile_batch(requests, options=opts.replace(tile_sizes=None))
    for sizes, outcome in zip(combos, outcomes):
        if outcome.error is not None:
            # Infeasible tiling (tiny domains etc.).
            result.failures[sizes] = outcome.error
            continue
        try:
            work = analyze_optimized(outcome.result)
            t = (
                gpu_time(work)
                if spec.name == "gpu"
                else cpu_time(work, threads)
            )
        except Exception as exc:
            result.failures[sizes] = f"{type(exc).__name__}: {exc}"
            continue
        result.evaluations[sizes] = t
        if works is not None:
            works[sizes] = work_features(work)
        # Cost ties break on the tile-size tuple, matching ``top()`` — on
        # a sorted candidate grid this is the first-seen minimum, and it
        # keeps exhaustive and pruned sweeps agreeing when many tilings
        # share the optimal cost.
        if (t, sizes) < (result.best_time, result.best_sizes or sizes):
            result.best_time = t
            result.best_sizes = sizes


def _rank_and_cut(
    program: Program,
    combos: List[Tuple[int, ...]],
    dims: int,
    threads: int,
    target_name: str,
    bounds: Sequence[int],
    model,
    top_k: Optional[int],
    result: TuneResult,
) -> List[Tuple[int, ...]]:
    """Rank the grid with the model; returns the top-k cut, or flags a
    fallback on ``result`` (missing/stale model, thin coverage)."""
    from ..learn.model import RankModel, load_model
    from ..service.fingerprint import fingerprint_program

    if not combos:
        result.fallback_reason = "empty candidate grid"
        return combos
    if not isinstance(model, RankModel):
        path = model if model is not None else None
        try:
            model = load_model(path)
        except FileNotFoundError:
            result.fallback_reason = "no model available"
            return combos
        except Exception as exc:
            result.fallback_reason = (
                f"model load failed: {type(exc).__name__}: {exc}"
            )
            return combos

    fp = fingerprint_program(program)
    rows = model.coverage(fp, target_name)
    if rows < model.min_coverage:
        result.fallback_reason = (
            f"coverage {rows} below min_coverage {model.min_coverage}"
        )
        return combos
    try:
        ranked = model.rank(
            program, combos, dims=dims, threads=threads,
            target=target_name, fingerprint=fp, bounds=bounds,
        )
    except Exception as exc:
        result.fallback_reason = f"ranking failed: {type(exc).__name__}: {exc}"
        return combos
    result.model_scores = {sizes: score for sizes, score in ranked}
    k = top_k if top_k is not None else default_top_k(len(combos))
    return [sizes for sizes, _ in ranked[: max(1, k)]]


def _collect_records(
    dataset,
    program: Program,
    result: TuneResult,
    threads: int,
    target_name: str,
    startup: str,
    dims: int,
    bounds: Sequence[int],
    works: Dict[Tuple[int, ...], Dict[str, float]],
) -> None:
    """Append one dataset record per exact evaluation (best effort)."""
    from ..data import make_record
    from ..learn.features import ranking_features
    from ..service.fingerprint import fingerprint_program

    fp = fingerprint_program(program)
    records = [
        make_record(
            fingerprint=fp,
            tile_sizes=sizes,
            cost=cost,
            features=ranking_features(program, sizes, dims, threads, bounds),
            program=program.name,
            target=target_name,
            startup=startup,
            threads=threads,
            dims=dims,
            work=works.get(sizes),
            source="autotune",
        )
        for sizes, cost in result.evaluations.items()
    ]
    try:
        dataset.append(records)
    except (OSError, ValueError):
        pass


def _combinations(candidates: Sequence[int], dims: int) -> List[Tuple[int, ...]]:
    out: List[Tuple[int, ...]] = [()]
    for _ in range(dims):
        out = [prefix + (c,) for prefix in out for c in candidates]
    return out
