"""Tile-size auto-tuning (the PolyMage strategy used for Table I).

The paper inherits PolyMage's auto-tuner: try every tile-size combination
from {8, 16, 32, 64, 128, 256, 512} per dimension and keep the fastest.
Because the paper's pass needs tile sizes only for the *live-out* spaces
(intermediate shapes are derived from the data space), the search space
stays two-dimensional regardless of pipeline depth — one of the
practical benefits Section III calls out ("reduce the magnitude of the
tile size space").

This tuner evaluates candidates against the analytical machine models,
which plays the role of PolyMage's empirical re-runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import Program

CANDIDATE_SIZES = (8, 16, 32, 64, 128, 256, 512)


@dataclass
class TuneResult:
    best_sizes: Tuple[int, ...]
    best_time: float
    evaluations: Dict[Tuple[int, ...], float] = field(default_factory=dict)
    failures: Dict[Tuple[int, ...], str] = field(default_factory=dict)
    tuning_seconds: float = 0.0

    def top(self, k: int = 5) -> List[Tuple[Tuple[int, ...], float]]:
        return sorted(self.evaluations.items(), key=lambda kv: kv[1])[:k]


def autotune_tile_sizes(
    program: Program,
    target: str = "cpu",
    threads: int = 32,
    candidates: Sequence[int] = CANDIDATE_SIZES,
    dims: int = 2,
    max_extent: Optional[int] = None,
    mode: str = "serial",
    jobs: Optional[int] = None,
    cache=None,
    options=None,
) -> TuneResult:
    """Exhaustive search over live-out tile sizes against the cost model.

    ``max_extent`` skips candidates larger than the iteration space (the
    tuner derives it from the first live-out tensor when omitted).

    Candidates are evaluated through the batch-compile driver
    (:func:`repro.service.compile_batch`): ``mode`` picks the dispatch
    strategy (``"serial"`` by default, ``"auto"``/``"process"``/
    ``"thread"`` fan out over ``jobs`` workers) and an optional ``cache``
    (a :class:`repro.service.CompileCache`) reuses compile results across
    candidates, runs and processes.  The cost model is deterministic, so
    every mode returns bit-identical ``best_sizes``/``best_time``.

    A :class:`repro.CompileOptions` supplies ``target``/``startup``/
    ``mode``/``jobs``/``cache`` in one validated bundle (its
    ``tile_sizes`` field is ignored — tile sizes are what is being
    searched); the legacy keywords funnel through the same validation.
    """
    from ..machine import analyze_optimized, cpu_time, gpu_time
    from ..options import _UNSET, resolve_options
    from ..service import instrument
    from ..service.driver import CompileRequest, compile_batch

    opts = resolve_options(
        options,
        target=target if target != "cpu" else _UNSET,
        mode=mode if mode != "serial" else _UNSET,
        jobs=jobs if jobs is not None else _UNSET,
        cache=cache if cache is not None else _UNSET,
    )
    if options is None and mode == "serial":
        # The legacy default here is "serial", not CompileOptions' "auto".
        opts = opts.replace(mode="serial")
    spec = opts.target

    if max_extent is None:
        first = program.tensors[program.liveout[0]]
        max_extent = max(first.concrete_shape(program.params))

    t0 = time.perf_counter()
    result = TuneResult(best_sizes=(), best_time=float("inf"))
    combos = _combinations(
        [c for c in candidates if c <= max_extent], dims
    )
    with instrument.span("autotune"):
        requests = [
            CompileRequest(
                program, target=spec, tile_sizes=sizes, startup=opts.startup
            )
            for sizes in combos
        ]
        outcomes = compile_batch(
            requests, mode=opts.mode, max_workers=opts.jobs, cache=opts.cache
        )
        for sizes, outcome in zip(combos, outcomes):
            if outcome.error is not None:
                # Infeasible tiling (tiny domains etc.).
                result.failures[sizes] = outcome.error
                continue
            try:
                work = analyze_optimized(outcome.result)
                t = (
                    gpu_time(work)
                    if spec.name == "gpu"
                    else cpu_time(work, threads)
                )
            except Exception as exc:
                result.failures[sizes] = f"{type(exc).__name__}: {exc}"
                continue
            result.evaluations[sizes] = t
            if t < result.best_time:
                result.best_time = t
                result.best_sizes = sizes
    result.tuning_seconds = time.perf_counter() - t0
    if not result.evaluations:
        raise RuntimeError(
            f"no feasible tile size among {len(combos)} candidates: "
            f"{result.failures}"
        )
    return result


def _combinations(candidates: Sequence[int], dims: int) -> List[Tuple[int, ...]]:
    out: List[Tuple[int, ...]] = [()]
    for _ in range(dims):
        out = [prefix + (c,) for prefix in out for c in candidates]
    return out
