"""``repro.scheduler`` — start-up scheduling: fusion heuristics and tiling."""

from .fusion import (
    HEURISTICS,
    HYBRIDFUSE,
    MAXFUSE,
    MINFUSE,
    SMARTFUSE,
    Scheduled,
    SchedulerError,
    schedule_program,
)
from .parallelism import band_attributes, fusion_preserves_parallelism, required_shifts
from .stages import FusionGroup, group_band, group_of_statement, groups_tree, identity_rows
from .autotune import TuneResult, autotune_tile_sizes
from .partition_search import StageInfo, beam_assign, legal_targets, stage_infos
from .tiling import (
    tile_all_groups,
    tile_band,
    tile_band_multilevel,
    tile_group,
    tile_group_multilevel,
)

__all__ = [
    "FusionGroup",
    "HEURISTICS",
    "HYBRIDFUSE",
    "MAXFUSE",
    "MINFUSE",
    "SMARTFUSE",
    "Scheduled",
    "SchedulerError",
    "band_attributes",
    "fusion_preserves_parallelism",
    "group_band",
    "group_of_statement",
    "groups_tree",
    "identity_rows",
    "required_shifts",
    "schedule_program",
    "StageInfo",
    "TuneResult",
    "autotune_tile_sizes",
    "beam_assign",
    "legal_targets",
    "stage_infos",
    "tile_all_groups",
    "tile_band",
    "tile_band_multilevel",
    "tile_group",
    "tile_group_multilevel",
]
