"""Stage-level target assignment: the partitioner's beam search.

The heterogeneous partitioner views a pipeline as its statement DAG in
program order (program order is topological — dependences only point
forward) and chooses one target per statement.  Contiguous runs of the
same target become partitions; every producer/consumer edge that crosses
a run boundary becomes a cut, priced by the transfer model on the exact
Presburger footprint of the consumed region.

The search is a beam over statements in program order.  Each candidate
assignment is scored with a cheap per-stage cost — one
:class:`~repro.machine.cost.ClusterWork` built from the statement's exact
read/write footprints, priced by the per-target machine models — plus the
transfer term for every consumed tensor whose latest producer sits on a
different target.  The *final* plan is re-priced exactly (per-partition
compile + :func:`~repro.machine.analyze_optimized`) by the partitioner;
the per-stage estimates only steer the search.

Pattern legality mirrors the NPU's programming model: a statement that
updates a tensor in place (an ASSIGN reading the tensor it writes, like
conv2d's quantisation stage) has no dataflow mapping on the NPU and is
never assigned there — the NPU-offload-with-CPU-fallback scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir import ASSIGN, Program

if TYPE_CHECKING:  # repro.machine imports the scheduler; defer to call time
    from ..machine.cost import ClusterWork
    from ..machine.transfer import TransferSpec

#: Nominal tile edge used for the search's parallelism estimate.
_EST_TILE = 32


@dataclass
class StageInfo:
    """One statement's search-relevant features."""

    name: str
    index: int
    target_illegal: Tuple[str, ...]       # targets this stage may not run on
    tensor_written: str
    #: tensor -> exact footprint bytes this stage consumes (rhs reads,
    #: plus the accumulator footprint of a reduction — data that must be
    #: resident before the stage runs).
    consumes: Dict[str, int] = field(default_factory=dict)
    work: Optional["ClusterWork"] = None


def stage_infos(
    program: Program, params: Optional[Mapping[str, int]] = None
) -> List[StageInfo]:
    """Per-statement features for the whole pipeline, in program order."""
    from ..machine.cost import ClusterWork, ITEMSIZE

    params = dict(program.params, **(params or {}))
    stages: List[StageInfo] = []
    for i, stmt in enumerate(program.statements):
        written = stmt.tensor_written()
        inplace = stmt.kind == ASSIGN and written in stmt.tensors_read()

        # read_relations() carries one merged access map per tensor, and for
        # a reduction it already includes the accumulator load — so this is
        # exactly the data that must be resident before the stage runs.
        consumes: Dict[str, int] = {}
        for (_, tensor), access in stmt.read_relations().maps.items():
            region = access.apply_to_set(stmt.domain)
            consumes[tensor] = region.count_points(params) * ITEMSIZE

        vol = stmt.domain.count_points(params)
        ops = float(vol * stmt.ops_per_instance())
        write_region = stmt.write_relation().apply_to_set(stmt.domain)
        write_bytes = write_region.count_points(params) * ITEMSIZE
        box = stmt.domain.fix_params(params).bounding_box()
        extents = [
            (hi - lo + 1)
            for d in stmt.dims[:2]
            for lo, hi in [box.get(d, (0, 0))]
            if lo is not None and hi is not None
        ]
        n_tiles = 1
        for e in extents:
            n_tiles *= max(1, -(-e // _EST_TILE))
        work = ClusterWork(
            name=stmt.name,
            statements=[stmt.name],
            ops=ops,
            recompute_ops=0.0,
            dram_read_bytes=float(sum(consumes.values())),
            dram_write_bytes=float(write_bytes),
            scratch_traffic_bytes=0.0,
            n_tiles=n_tiles,
            parallel_units=n_tiles,
            n_parallel_dims=min(2, len(extents)),
            scratch_bytes_per_tile=0,
            vectorizable=True,
        )
        stages.append(
            StageInfo(
                name=stmt.name,
                index=i,
                target_illegal=("npu",) if inplace else (),
                tensor_written=written,
                consumes=consumes,
                work=work,
            )
        )
    return stages


def legal_targets(stage: StageInfo, targets: Sequence[str]) -> List[str]:
    out = [t for t in targets if t not in stage.target_illegal]
    if not out:
        # Every pipeline stage can always fall back to the host.
        out = ["cpu"] if "cpu" in targets else list(targets[:1])
    return out


def score_assignment(
    stages: Sequence[StageInfo],
    assignment: Sequence[str],
    transfer: "TransferSpec",
    threads: int = 32,
) -> float:
    """The search's modeled total of one explicit assignment."""
    from ..machine.targets import cluster_cost
    from ..machine.transfer import transfer_time

    producer: Dict[str, int] = {}
    total = 0.0
    for stage, target in zip(stages, assignment):
        total += cluster_cost(stage.work, target, threads)
        for tensor, nbytes in stage.consumes.items():
            src_idx = producer.get(tensor)
            if src_idx is None:
                continue
            src = assignment[src_idx]
            if src != target:
                total += transfer_time(src, target, nbytes, transfer)
        producer[stage.tensor_written] = stage.index
    return total


def beam_assign(
    stages: Sequence[StageInfo],
    targets: Sequence[str],
    transfer: "TransferSpec",
    threads: int = 32,
    beam_width: int = 8,
) -> Tuple[List[str], float]:
    """Beam search over per-stage target assignments, in program order.

    Returns ``(assignment, estimated_cost)`` — one target name per stage
    and the search's modeled total (per-stage compute + cut transfers).
    Deterministic: ties break on the assignment tuple.
    """
    from ..machine.targets import cluster_cost
    from ..machine.transfer import transfer_time

    # Latest producer of each tensor, as a stage index.
    producer: Dict[str, int] = {}
    producers_before: List[Dict[str, int]] = []
    for stage in stages:
        producers_before.append(dict(producer))
        producer[stage.tensor_written] = stage.index

    beams: List[Tuple[float, Tuple[str, ...]]] = [(0.0, ())]
    for stage in stages:
        grown: List[Tuple[float, Tuple[str, ...]]] = []
        for cost, assignment in beams:
            for t in legal_targets(stage, targets):
                c = cost + cluster_cost(stage.work, t, threads)
                for tensor, nbytes in stage.consumes.items():
                    src_idx = producers_before[stage.index].get(tensor)
                    if src_idx is None:
                        continue  # program input: host-resident everywhere
                    src = assignment[src_idx]
                    if src != t:
                        c += transfer_time(src, t, nbytes, transfer)
                grown.append((c, assignment + (t,)))
        grown.sort(key=lambda e: (e[0], e[1]))
        beams = grown[:beam_width]
    best_cost, best = beams[0]
    return list(best), best_cost
