"""Start-up fusion heuristics: minfuse, smartfuse, maxfuse, hybridfuse.

These reproduce the PPCG/Pluto fusion options the paper compares against
(Section VI):

* **minfuse** — no fusion: one computation space per statement;
* **smartfuse** — the default: greedily fuse a statement into its last
  producer's group when doing so keeps every fused dimension parallel and
  the band permutable;
* **maxfuse** — fuse whole connected components of the flow-dependence
  graph, aligning stencil offsets by shifting; typically loses coincidence
  (outer parallelism) on stencil programs;
* **hybridfuse** — Pluto's hybrid: smartfuse grouping at the outer level
  plus inner-level fusion for vectorisation; rejects programs whose inner
  domains are non-rectangular (mirroring the published failure mode).

The paper's own pass (:mod:`repro.core`) *starts from* a conservative
heuristic and re-fuses after tiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..deps import Dependence, memory_deps
from ..ir import Program
from ..presburger import LinExpr, memo
from ..schedule import DomainNode
from .parallelism import band_attributes, fusion_preserves_parallelism, required_shifts
from .stages import FusionGroup, groups_tree, identity_rows

# Start-up fusion depends only on the program and the heuristic — never on
# tile sizes or the target — so one analysis serves a whole autotune sweep.
# Only the (deps, groups) analysis is cached: the schedule tree is rebuilt
# per call because post-tiling fusion rewrites it in place.
_STARTUP_MEMO = memo.table("startup_schedule")

MINFUSE = "minfuse"
SMARTFUSE = "smartfuse"
MAXFUSE = "maxfuse"
HYBRIDFUSE = "hybridfuse"

HEURISTICS = (MINFUSE, SMARTFUSE, MAXFUSE, HYBRIDFUSE)


class SchedulerError(RuntimeError):
    """Raised when a heuristic cannot schedule a program."""


@dataclass
class Scheduled:
    """The result of start-up scheduling: groups + the realised tree."""

    program: Program
    heuristic: str
    groups: List[FusionGroup]
    deps: List[Dependence]
    tree: DomainNode
    hybrid_inner: bool = False

    def group_of(self, stmt: str) -> FusionGroup:
        for g in self.groups:
            if stmt in g:
                return g
        raise KeyError(stmt)


def schedule_program(program: Program, heuristic: str = SMARTFUSE) -> Scheduled:
    """Apply a start-up fusion heuristic and build the schedule tree."""
    if heuristic not in HEURISTICS:
        raise ValueError(f"unknown heuristic {heuristic!r}; choose from {HEURISTICS}")
    from ..service import instrument
    from ..service.fingerprint import fingerprint_program

    with instrument.span("scheduler", heuristic=heuristic):
        key = (fingerprint_program(program), heuristic)
        cached = _STARTUP_MEMO.get(key)
        if cached is not memo.MISS:
            deps, groups = cached
            instrument.count("scheduler.startup_memo.hit")
        else:
            instrument.count("scheduler.startup_memo.miss")
            with instrument.span("scheduler.analyze", heuristic=heuristic):
                deps = memory_deps(program)
                if heuristic == MINFUSE:
                    groups = _minfuse(program, deps)
                elif heuristic == SMARTFUSE:
                    groups = _smartfuse(program, deps)
                elif heuristic == MAXFUSE:
                    groups = _maxfuse(program, deps)
                else:
                    groups = _hybridfuse(program, deps)
            _STARTUP_MEMO.put(key, (deps, groups))
        instrument.annotate(groups=len(groups), deps=len(deps))
        with instrument.span("scheduler.build_tree"):
            tree = groups_tree(program, groups)
    return Scheduled(
        program, heuristic, groups, deps, tree, hybrid_inner=heuristic == HYBRIDFUSE
    )


# ---------------------------------------------------------------------------
# minfuse


def _singleton_group(program: Program, stmt, deps, name: str) -> FusionGroup:
    """A one-statement group whose band is the largest permutable prefix.

    Mirrors Pluto/PPCG band splitting: for a reduction nest like conv2d's
    ``S2(h, w, kh, kw)`` the accumulator self-dependence makes the full 4-D
    band non-permutable, but the ``(h, w)`` prefix is a permutable (and
    coincident) tile band with the reduction loops nested inside.
    """
    full = len(stmt.dims)
    rows_full = {stmt.name: identity_rows(stmt.dims, full)}
    coincident, _perm = band_attributes(
        deps, [stmt.name], rows_full, full, program.params
    )
    depth = _largest_permutable_prefix(
        deps, [stmt.name], rows_full, full, program.params
    )
    if depth == 0:
        depth = full
        permutable = False
        coin = coincident
    else:
        permutable = True
        coin = coincident[:depth]
    rows = {stmt.name: identity_rows(stmt.dims, depth)}
    return FusionGroup(
        name=name,
        statements=[stmt.name],
        depth=depth,
        rows=rows,
        coincident=list(coin),
        permutable=permutable,
    )


def _largest_permutable_prefix(deps, members, rows, maxdepth, params) -> int:
    from ..deps import dep_distance_bounds

    member_set = set(members)
    lows = [0] * maxdepth  # most negative lower bound seen per dim
    for dep in deps:
        if dep.source not in member_set or dep.target not in member_set:
            continue
        bounds = dep_distance_bounds(
            dep, list(rows[dep.source]), list(rows[dep.target]), params
        )
        for d in range(maxdepth):
            lo, _ = bounds[d]
            if lo is None:
                lows[d] = -1
            else:
                lows[d] = min(lows[d], lo)
    depth = 0
    for d in range(maxdepth):
        if lows[d] < 0:
            break
        depth += 1
    return depth


def _minfuse(program: Program, deps: Sequence[Dependence]) -> List[FusionGroup]:
    return [
        _singleton_group(program, stmt, deps, f"G{gi}")
        for gi, stmt in enumerate(program.statements)
    ]


# ---------------------------------------------------------------------------
# smartfuse


def _smartfuse(program: Program, deps: Sequence[Dependence]) -> List[FusionGroup]:
    groups: List[FusionGroup] = []
    stmt_group: Dict[str, int] = {}
    for stmt in program.statements:
        candidate_idx = _last_producer_group(stmt.name, deps, stmt_group)
        fused = False
        if candidate_idx is not None:
            g = groups[candidate_idx]
            new_depth = min(g.depth, len(stmt.dims))
            if new_depth > 0 and _no_interfering_groups(
                stmt.name, deps, stmt_group, candidate_idx
            ):
                trial_rows = {
                    s: tuple(g.rows[s][:new_depth]) for s in g.statements
                }
                cand_rows = identity_rows(stmt.dims, new_depth)
                if fusion_preserves_parallelism(
                    deps,
                    g.statements,
                    trial_rows,
                    stmt.name,
                    cand_rows,
                    new_depth,
                    program.params,
                ):
                    g.statements.append(stmt.name)
                    g.depth = new_depth
                    g.rows = dict(trial_rows)
                    g.rows[stmt.name] = tuple(cand_rows)
                    g.coincident, g.permutable = band_attributes(
                        deps, g.statements, g.rows, new_depth, program.params
                    )
                    stmt_group[stmt.name] = candidate_idx
                    fused = True
        if not fused:
            groups.append(
                _singleton_group(program, stmt, deps, f"G{len(groups)}")
            )
            stmt_group[stmt.name] = len(groups) - 1
    return groups


def _last_producer_group(
    stmt: str, deps: Sequence[Dependence], stmt_group: Mapping[str, int]
) -> Optional[int]:
    best: Optional[int] = None
    for d in deps:
        if d.target == stmt and d.source != stmt and d.source in stmt_group:
            idx = stmt_group[d.source]
            best = idx if best is None else max(best, idx)
    return best


def _no_interfering_groups(
    stmt: str,
    deps: Sequence[Dependence],
    stmt_group: Mapping[str, int],
    candidate_idx: int,
) -> bool:
    """No dependence touches ``stmt`` from a group after the candidate."""
    for d in deps:
        other = None
        if d.target == stmt and d.source != stmt:
            other = d.source
        elif d.source == stmt and d.target != stmt:
            other = d.target
        if other is not None and other in stmt_group:
            if stmt_group[other] > candidate_idx:
                return False
    return True


# ---------------------------------------------------------------------------
# maxfuse


def _maxfuse(program: Program, deps: Sequence[Dependence]) -> List[FusionGroup]:
    # Union-find over flow dependences (undirected connectivity).
    parent: Dict[str, str] = {s.name: s.name for s in program.statements}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        parent[find(a)] = find(b)

    for d in deps:
        if d.kind == "flow" and d.source != d.target:
            union(d.source, d.target)

    components: Dict[str, List[str]] = {}
    for stmt in program.statements:
        components.setdefault(find(stmt.name), []).append(stmt.name)

    ordered = sorted(components.values(), key=lambda c: min(program.statement_index(s) for s in c))
    groups: List[FusionGroup] = []
    for gi, members in enumerate(ordered):
        members = sorted(members, key=program.statement_index)
        depth = min(len(program.statement(s).dims) for s in members)
        dims_of = {s: program.statement(s).dims for s in members}
        shifts = required_shifts(deps, members, dims_of, depth, program.params)
        rows: Dict[str, Tuple[LinExpr, ...]] = {}
        for s in members:
            base = identity_rows(dims_of[s], depth)
            rows[s] = tuple(r + shifts[s][i] for i, r in enumerate(base))
        coincident, permutable = band_attributes(
            deps, members, rows, depth, program.params
        )
        groups.append(
            FusionGroup(
                name=f"G{gi}",
                statements=list(members),
                depth=depth,
                rows=rows,
                coincident=coincident,
                permutable=permutable,
            )
        )
    return groups


# ---------------------------------------------------------------------------
# hybridfuse


def _hybridfuse(program: Program, deps: Sequence[Dependence]) -> List[FusionGroup]:
    """Pluto's hybrid heuristic: smartfuse outer, maximal inner fusion.

    Inner-level fusion requires rectangular inner domains; a domain whose
    constraints couple two iterators (triangular loops, as in covariance)
    defeats the inner alignment and is rejected — reproducing the published
    failure (Table II reports a segfault for covariance under hybridfuse).
    """
    for stmt in program.statements:
        for piece in stmt.domain.pieces:
            for c in piece.constraints:
                involved = [s for s in c.expr.symbols() if s in stmt.dims]
                if len(involved) > 1:
                    raise SchedulerError(
                        f"hybridfuse: non-rectangular domain in {stmt.name} "
                        f"(constraint {c}); inner-level fusion unsupported"
                    )
    return _smartfuse(program, deps)
