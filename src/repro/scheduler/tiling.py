"""Rectangular/parallelogram tiling of band nodes.

Tile bands use *tile-origin coordinates*: a tile band dimension iterates
over the origins of tiles (multiples of the tile size) and the point band
below it re-uses the same affine rows, constrained by the code generator to
``origin <= row < origin + size``.  Keeping tile coordinates affine (no
floor divisions) is what lets the paper's footprint relations (4) and
extension schedules (6) stay within plain affine algebra.

Parallelogram tiling falls out for free: a band whose rows carry alignment
shifts (``h + KH - 1``) tiles into parallelogram-shaped tiles in the
original iteration space.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..schedule import BandNode, DomainNode, FilterNode
from .fusion import Scheduled
from .stages import FusionGroup


def tile_band(band: BandNode, tile_sizes: Sequence[int]) -> Tuple[BandNode, BandNode]:
    """Split ``band`` into a tile band over origins and a point band.

    Returns ``(tile, point)`` where ``tile.child is point`` and
    ``point.child`` is the original band's child.  ``tile_sizes`` may be
    shorter than the band (only leading dims are tiled).
    """
    n = len(tile_sizes)
    if n == 0 or n > band.n_dims:
        raise ValueError(
            f"cannot tile {band.n_dims}-dim band with {n} tile sizes"
        )
    if any(t <= 0 for t in tile_sizes):
        raise ValueError(f"tile sizes must be positive: {tile_sizes}")
    if not band.permutable:
        raise ValueError("cannot tile a non-permutable band")
    point = BandNode(
        {s: list(rows) for s, rows in band.schedules.items()},
        dim_names=[f"{d}_p" for d in band.dim_names],
        permutable=band.permutable,
        coincident=list(band.coincident),
        child=band.child,
    )
    tile = BandNode(
        {s: list(rows[:n]) for s, rows in band.schedules.items()},
        dim_names=[f"{d}_T" for d in band.dim_names[:n]],
        permutable=band.permutable,
        coincident=list(band.coincident[:n]),
        child=point,
        tile_sizes=list(tile_sizes),
    )
    return tile, point


def tile_group(
    tree: DomainNode, group: FusionGroup, tile_sizes: Sequence[int]
) -> Optional[BandNode]:
    """Tile a fusion group's outer band in place; returns the tile band.

    Non-permutable groups are left untiled (``None`` is returned), mirroring
    PPCG's behaviour.
    """
    filt = _group_filter(tree, group)
    band = filt.child
    if not isinstance(band, BandNode):
        raise ValueError(f"group {group.name} filter does not hold a band")
    if not band.permutable:
        return None
    sizes = list(tile_sizes)[: band.n_dims]
    if not sizes:
        return None
    tile, _point = tile_band(band, sizes)
    filt.child = tile
    return tile


def tile_all_groups(
    scheduled: Scheduled, tile_sizes: Sequence[int]
) -> DomainNode:
    """Tile every tilable group with the same tile-size vector (baselines)."""
    tree = scheduled.tree
    for group in scheduled.groups:
        sizes = list(tile_sizes)[: group.depth]
        if sizes and group.permutable:
            tile_group(tree, group, sizes)
    return tree


def _group_filter(tree: DomainNode, group: FusionGroup) -> FilterNode:
    from ..schedule import top_level_filters

    for filt in top_level_filters(tree):
        if set(group.statements) == set(filt.statements):
            return filt
    raise KeyError(f"no top-level filter for group {group.name}")


def tile_band_multilevel(
    band: BandNode, levels: Sequence[Sequence[int]]
) -> List[BandNode]:
    """Multi-level tiling (Kim et al. [30]; the NPU's L1/L0 hierarchy).

    ``levels`` lists tile-size vectors outermost-first; each inner level
    must evenly describe a finer blocking (sizes need not divide, the
    origin-coordinate semantics handles ragged boundaries).  Returns the
    new band nodes outermost-first; the innermost point band keeps the
    original child.
    """
    if not levels:
        raise ValueError("need at least one level of tile sizes")
    for outer, inner in zip(levels, levels[1:]):
        for o, i in zip(outer, inner):
            if i >= o:
                raise ValueError(
                    f"inner tile size {i} must be smaller than outer {o}"
                )
    bands: List[BandNode] = []
    current = band
    for sizes in levels:
        tile, point = tile_band(current, list(sizes)[: current.n_dims])
        if bands:
            bands[-1].child = tile
        bands.append(tile)
        current = point
    bands.append(current)
    return bands


def tile_group_multilevel(
    tree: DomainNode, group: FusionGroup, levels: Sequence[Sequence[int]]
) -> Optional[BandNode]:
    """Apply multi-level tiling to a group's band in the tree."""
    filt = _group_filter(tree, group)
    band = filt.child
    if not isinstance(band, BandNode) or not band.permutable:
        return None
    bands = tile_band_multilevel(band, levels)
    filt.child = bands[0]
    return bands[0]
