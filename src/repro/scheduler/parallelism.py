"""Parallelism (coincidence) and permutability detection.

A band dimension is *coincident* (parallel) when every dependence between
statements of the group has distance exactly zero at that dimension; the
band is *permutable* (tilable) when every dependence has non-negative
distance at every band dimension.  Distances are computed exactly from the
dependence relations.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..deps import Dependence, dep_distance_bounds
from ..presburger import LinExpr


def band_attributes(
    deps: Sequence[Dependence],
    members: Sequence[str],
    rows: Mapping[str, Sequence[LinExpr]],
    depth: int,
    params: Mapping[str, int],
) -> Tuple[List[bool], bool]:
    """``(coincident, permutable)`` of a candidate fused band.

    Only dependences with both endpoints inside ``members`` constrain the
    band; dependences crossing group boundaries are satisfied by the group
    sequence order.
    """
    members = set(members)
    coincident = [True] * depth
    permutable = True
    for dep in deps:
        if dep.source not in members or dep.target not in members:
            continue
        bounds = dep_distance_bounds(
            dep, list(rows[dep.source]), list(rows[dep.target]), params
        )
        for d in range(depth):
            lo, hi = bounds[d]
            if lo != 0 or hi != 0:
                coincident[d] = False
            if lo is None or lo < 0:
                permutable = False
    return coincident, permutable


def fusion_preserves_parallelism(
    deps: Sequence[Dependence],
    group_members: Sequence[str],
    group_rows: Mapping[str, Sequence[LinExpr]],
    candidate: str,
    candidate_rows: Sequence[LinExpr],
    depth: int,
    params: Mapping[str, int],
) -> bool:
    """Would adding ``candidate`` keep every band dimension coincident?

    This is the smartfuse criterion: fusion may not introduce any non-zero
    dependence distance at the fused dimensions.
    """
    new_members = list(group_members) + [candidate]
    new_rows = dict(group_rows)
    new_rows[candidate] = tuple(candidate_rows)
    coincident, permutable = band_attributes(
        deps, new_members, new_rows, depth, params
    )
    return all(coincident) and permutable


def required_shifts(
    deps: Sequence[Dependence],
    members_in_order: Sequence[str],
    dims_of: Mapping[str, Sequence[str]],
    depth: int,
    params: Mapping[str, int],
) -> Dict[str, Tuple[int, ...]]:
    """Per-statement shifts making all intra-group distances non-negative.

    Processes statements in program order (a topological order of the
    forward dependence graph) and accumulates, per band dimension, the
    shift needed so that ``shifted_dst - shifted_src >= 0`` for every
    dependence.  This is the alignment maxfuse applies before fusing
    stencil producers and consumers.
    """
    shifts: Dict[str, List[int]] = {s: [0] * depth for s in members_in_order}
    member_set = set(members_in_order)
    order = {s: i for i, s in enumerate(members_in_order)}
    for dst in members_in_order:
        for dep in deps:
            if dep.target != dst or dep.source not in member_set:
                continue
            if order[dep.source] > order[dst]:
                continue
            src_rows = [
                LinExpr.var(d) + shifts[dep.source][i]
                for i, d in enumerate(dims_of[dep.source][:depth])
            ]
            src_rows += [LinExpr.const_expr(0)] * (depth - len(src_rows))
            dst_rows = [
                LinExpr.var(d) for d in dims_of[dst][:depth]
            ]
            dst_rows += [LinExpr.const_expr(0)] * (depth - len(dst_rows))
            bounds = dep_distance_bounds(dep, src_rows, dst_rows, params)
            for d in range(depth):
                lo, _hi = bounds[d]
                if lo is not None and lo < 0:
                    # distance with shifts is (dst_row + shift_dst) -
                    # (src_row + shift_src); bounds already include
                    # shift_src, so shift_dst >= -lo restores legality.
                    shifts[dst][d] = max(shifts[dst][d], -lo)
    return {s: tuple(v) for s, v in shifts.items()}
