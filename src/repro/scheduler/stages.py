"""Fusion groups (computation spaces) and their schedule-tree realisation.

A :class:`FusionGroup` is one *computation space* in the paper's sense: a
set of statements scheduled under a common outer band.  The start-up fusion
heuristics in :mod:`repro.scheduler.fusion` produce lists of groups; the
paper's Algorithms 1–3 then tile and re-fuse them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import Program
from ..presburger import LinExpr
from ..schedule import (
    BandNode,
    DomainNode,
    FilterNode,
    LeafNode,
    Node,
    SequenceNode,
)


@dataclass
class FusionGroup:
    """One computation space: statements under a shared outer band.

    ``rows[s]`` gives the outer band schedule of statement ``s`` — one
    affine expression (over the statement's own iterators) per band
    dimension, already including any alignment shifts.
    """

    name: str
    statements: List[str]
    depth: int
    rows: Dict[str, Tuple[LinExpr, ...]]
    coincident: List[bool]
    permutable: bool

    def n_parallel(self) -> int:
        """Parallel dimensions available after legal reordering.

        A permutable band may be reordered to bring coincident dimensions
        outermost (what PPCG's scheduler does), so every coincident dim
        counts; a non-permutable band only offers its leading coincident
        prefix.
        """
        if self.permutable:
            return sum(1 for c in self.coincident if c)
        count = 0
        for c in self.coincident:
            if not c:
                break
            count += 1
        return count

    def parallel_dim_indices(self) -> List[int]:
        """Band positions usable for parallelism (see :meth:`n_parallel`)."""
        if self.permutable:
            return [d for d, c in enumerate(self.coincident) if c]
        out = []
        for d, c in enumerate(self.coincident):
            if not c:
                break
            out.append(d)
        return out

    def __contains__(self, stmt: str) -> bool:
        return stmt in self.statements


def identity_rows(dims: Sequence[str], depth: int) -> Tuple[LinExpr, ...]:
    rows = [LinExpr.var(d) for d in dims[:depth]]
    while len(rows) < depth:
        rows.append(LinExpr.const_expr(0))
    return tuple(rows)


def group_band(
    program: Program, group: FusionGroup, band_prefix: Optional[str] = None
) -> BandNode:
    """Build the band subtree of a fusion group.

    The outer band carries the group's fused dimensions; below it, a
    sequence of per-statement filters (in program order) holds inner bands
    for the statements' remaining iterators (e.g. reduction loops).
    """
    prefix = band_prefix or group.name
    inner = _inner_subtree(program, group)
    return BandNode(
        {s: list(group.rows[s]) for s in group.statements},
        dim_names=[f"{prefix}_t{d}" for d in range(group.depth)],
        permutable=group.permutable,
        coincident=list(group.coincident),
        child=inner,
    )


def _inner_subtree(program: Program, group: FusionGroup) -> Node:
    ordered = sorted(group.statements, key=program.statement_index)
    filters = []
    for s in ordered:
        stmt = program.statement(s)
        remaining = stmt.dims[group.depth :]
        if remaining:
            child: Node = BandNode(
                {s: [LinExpr.var(d) for d in remaining]},
                dim_names=[f"{s}_p{d}" for d in range(len(remaining))],
                permutable=True,
                coincident=[False] * len(remaining),
                child=LeafNode(),
            )
        else:
            child = LeafNode()
        filters.append(FilterNode([s], child))
    if len(filters) == 1:
        return filters[0].child  # single statement: no inner sequence needed
    return SequenceNode(filters)


def groups_tree(program: Program, groups: Sequence[FusionGroup]) -> DomainNode:
    """The schedule tree realising a list of fusion groups in order."""
    filters = []
    for g in groups:
        band = group_band(program, g)
        ordered = sorted(g.statements, key=program.statement_index)
        filters.append(FilterNode(ordered, band))
    return DomainNode(program.domains(), SequenceNode(filters))


def group_of_statement(groups: Sequence[FusionGroup], stmt: str) -> FusionGroup:
    for g in groups:
        if stmt in g:
            return g
    raise KeyError(f"statement {stmt} not in any group")
