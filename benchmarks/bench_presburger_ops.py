"""Microbenchmark of the presburger fast-path engine (PR: interned
linear algebra + operation memoization).

Times the hot ``BasicMap``/``BasicSet`` operations of the footprint
computation — ``apply_range``, ``intersect``, ``project_out`` and
``is_empty`` — on stencil-shaped relations (tile-containment maps composed
with halo accesses, the exact shape relations (2)-(4) of the paper
produce), in two modes:

* **cold** — every memo table and the LinExpr intern table are cleared
  before each repetition, so every operation runs the full algorithm;
* **memoized** — tables are cleared once, then repetitions replay the
  identical operations and hit the memo layer;
* **warm-started** — tables are cleared, then reloaded from a pickled
  :func:`repro.presburger.memo.snapshot` (the disk-spill round-trip a
  fresh process performs), and the repetitions replay against the warm
  entries.  The snapshot capture / pickle / reload costs are reported so
  the spill overhead can be weighed against the compile time it saves.

A second part sweeps the buffer-promotion pass over every target
(cpu/gpu/npu) and a grid of tile sizes on real pipelines, reporting the
aggregate memo hit rate each target achieves — the promotion pass leans on
the union-level relation memos (``umap_fix``, ``umap_image_of_point``,
``uset_bounding_box``), so its hit rate is the end-to-end health check of
the memo layer.

Saves raw numbers to ``benchmarks/results/presburger_ops.json`` and exits
non-zero if the memoized mode is not faster than the cold mode (the CI
smoke job runs ``--quick``).
"""

import argparse
import os
import pickle
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from common import print_table, save_perf_snapshot, save_results
from repro import CompileOptions
from repro.presburger import BasicMap, Constraint, LinExpr, MapSpace, memo

V = LinExpr.var


def build_tile_map(h, w, tile):
    """{ T[t0, t1] -> S[i, j] : tile containment and domain bounds }."""
    space = MapSpace("T", ("t0", "t1"), "S", ("i", "j"), ())
    cons = []
    for t, d, n in (("t0", "i", h), ("t1", "j", w)):
        cons.append(Constraint.le(V(t), V(d)))
        cons.append(Constraint.lt(V(d), V(t) + tile))
        cons.append(Constraint.ge(V(d)))
        cons.append(Constraint.lt(V(d), n))
    return BasicMap(space, cons)


def build_stencil_access(h, w, di, dj):
    """{ S[i, j] -> A[i + di, j + dj] : in-bounds }."""
    dom_cons = []
    for d, n in (("i", h), ("j", w)):
        dom_cons.append(Constraint.ge(V(d)))
        dom_cons.append(Constraint.lt(V(d), n))
    space = MapSpace("S", ("i", "j"), "A", ("a0", "a1"), ())
    cons = dom_cons + [
        Constraint.eq(V("a0") - V("i") - di),
        Constraint.eq(V("a1") - V("j") - dj),
    ]
    return BasicMap(space, cons)


def build_workload(size):
    """Stencil-shaped (tile map, access map) pairs as the footprint loop
    sees them: one tile relation composed with every halo tap."""
    tile_maps = [build_tile_map(size, size, t) for t in (16, 32, 64)]
    taps = [(di, dj) for di in (-1, 0, 1, 2) for dj in (-1, 0, 1, 2)]
    accesses = [build_stencil_access(size, size, di, dj) for di, dj in taps]
    return [(tm, am) for tm in tile_maps for am in accesses]


def run_once(pairs):
    """One repetition of the footprint-shaped operation mix."""
    t_apply = t_empty = t_intersect = t_project = 0.0
    footprints = []
    t0 = time.perf_counter()
    for tm, am in pairs:
        footprints.append(tm.apply_range(am))
    t_apply = time.perf_counter() - t0

    t0 = time.perf_counter()
    for fp in footprints:
        fp.is_empty()
    t_empty = time.perf_counter() - t0

    t0 = time.perf_counter()
    for a, b in zip(footprints, footprints[1:]):
        a.intersect(b)
    t_intersect = time.perf_counter() - t0

    t0 = time.perf_counter()
    for fp in footprints[:: max(1, len(footprints) // 8)]:
        fp.wrap().project_out(fp.space.in_dims)
    t_project = time.perf_counter() - t0
    return {
        "apply_range": t_apply,
        "is_empty": t_empty,
        "intersect": t_intersect,
        "project_out": t_project,
    }


def accumulate(total, part):
    for k, v in part.items():
        total[k] = total.get(k, 0.0) + v
    return total


def measure_spill(pairs, reps):
    """Snapshot / pickle / reload timing plus a warm-started replay.

    Clearing every table and the intern layer before :func:`memo.load_snapshot`
    mimics what a fresh process sees; the pickle round-trip rebuilds each
    entry the way ``CompileCache.get_memos`` would.
    """
    memo.clear_all()
    run_once(pairs)  # populate the spillable tables

    t0 = time.perf_counter()
    snap = memo.snapshot()
    snapshot_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    blob = pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL)
    pickle_s = time.perf_counter() - t0

    memo.clear_all()
    t0 = time.perf_counter()
    loaded = memo.load_snapshot(pickle.loads(blob))
    load_s = time.perf_counter() - t0

    warm_started = {}
    for _ in range(reps):
        accumulate(warm_started, run_once(pairs))
    warm_hits = sum(v["warm_hits"] for v in memo.stats().values())

    raw = {
        "entries": sum(len(v) for v in snap.values()),
        "entries_loaded": loaded,
        "bytes": len(blob),
        "snapshot_seconds": snapshot_s,
        "pickle_seconds": pickle_s,
        "load_seconds": load_s,
        "warm_started_seconds": warm_started,
        "warm_hits": warm_hits,
    }
    return raw


def run_bench(reps, size):
    pairs = build_workload(size)

    cold = {}
    for _ in range(reps):
        memo.clear_all()
        accumulate(cold, run_once(pairs))

    memo.clear_all()
    run_once(pairs)  # populate the tables once
    warm = {}
    for _ in range(reps):
        accumulate(warm, run_once(pairs))

    spill = measure_spill(pairs, reps)

    ops = sorted(cold)
    rows = []
    for op in ops:
        speedup = cold[op] / warm[op] if warm[op] > 0 else float("inf")
        ws = spill["warm_started_seconds"].get(op, 0.0)
        rows.append(
            [op, f"{cold[op]:.4f}", f"{warm[op]:.4f}", f"{ws:.4f}",
             f"{speedup:.1f}x"]
        )
    raw = {
        "reps": reps,
        "size": size,
        "pairs": len(pairs),
        "cold_seconds": cold,
        "memoized_seconds": warm,
        "spill": spill,
        "memo_stats": memo.stats(),
    }
    return rows, raw


PROMOTION_TARGETS = ("cpu", "gpu", "npu")
PROMOTION_WORKLOADS = ("unsharp_mask", "harris")
PROMOTION_TILE_SIZES = (8, 16, 32)
PROMOTION_SIZE = 256


def run_promotion_sweep(
    workloads=PROMOTION_WORKLOADS, tile_sizes=PROMOTION_TILE_SIZES
):
    """The promotion pass swept across targets and tile sizes, cold per
    target, reporting each target's aggregate memo hit rate."""
    from repro.api import get_workload
    from repro.codegen.promotion import promoted_buffers
    from repro.core import optimize

    rows, raw = [], {}
    for target in PROMOTION_TARGETS:
        memo.clear_all()
        # Hit/miss counters are process-cumulative (clearing drops entries,
        # not counts), so attribute per-target deltas against a baseline.
        base = {
            name: (v["hits"], v["misses"]) for name, v in memo.stats().items()
        }
        n_buffers = 0
        t0 = time.perf_counter()
        for name in workloads:
            prog = get_workload(name, PROMOTION_SIZE)
            for s in tile_sizes:
                res = optimize(prog, CompileOptions(target=target, tile_sizes=(s, s)))
                n_buffers += sum(
                    len(bufs) for bufs in promoted_buffers(res).values()
                )
        elapsed = time.perf_counter() - t0
        tables = {}
        for name, v in memo.stats().items():
            bh, bm = base.get(name, (0, 0))
            dh, dm = v["hits"] - bh, v["misses"] - bm
            if dh or dm:
                tables[name] = {"hits": dh, "misses": dm}
        hits = sum(t["hits"] for t in tables.values())
        misses = sum(t["misses"] for t in tables.values())
        rate = hits / max(1, hits + misses)
        raw[target] = {
            "seconds": elapsed,
            "buffers": n_buffers,
            "memo_hits": hits,
            "memo_misses": misses,
            "hit_rate": rate,
            "tables": tables,
        }
        rows.append(
            [
                target,
                str(n_buffers),
                f"{elapsed:.2f}",
                str(hits),
                str(misses),
                f"{100 * rate:.1f}%",
            ]
        )
    memo.clear_all()
    return rows, raw


def perf_gauges(raw):
    """Flatten the raw results into per-rep gauges for the regression gate.

    Per-rep normalisation keeps snapshots comparable across ``--reps``
    choices; the gate still assumes matching ``--size``.
    """
    reps = max(1, raw["reps"])
    gauges = {}
    for op, s in raw["cold_seconds"].items():
        gauges[f"presburger.cold.{op}"] = s / reps
    for op, s in raw["memoized_seconds"].items():
        gauges[f"presburger.memoized.{op}"] = s / reps
    spill = raw["spill"]
    gauges["presburger.spill.snapshot"] = spill["snapshot_seconds"]
    gauges["presburger.spill.load"] = spill["load_seconds"]
    for target, r in raw.get("promotion_sweep", {}).items():
        gauges[f"promotion.{target}.seconds"] = r["seconds"]
    return gauges


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer repetitions on a smaller problem",
    )
    ap.add_argument("--reps", type=int, default=None)
    ap.add_argument("--size", type=int, default=None)
    args = ap.parse_args(argv)
    reps = args.reps if args.reps is not None else (3 if args.quick else 10)
    size = args.size if args.size is not None else (256 if args.quick else 1024)

    rows, raw = run_bench(reps, size)
    print_table(
        f"Presburger ops, cold vs memoized ({reps} reps, size {size})",
        ["operation", "cold (s)", "memoized (s)", "warm-started (s)", "speedup"],
        rows,
    )
    spill = raw["spill"]
    print(
        f"spill round-trip: {spill['entries']} entries, "
        f"{spill['bytes'] / 1024:.1f} KiB; snapshot {spill['snapshot_seconds'] * 1e3:.2f} ms, "
        f"pickle {spill['pickle_seconds'] * 1e3:.2f} ms, "
        f"reload {spill['load_seconds'] * 1e3:.2f} ms, "
        f"{spill['warm_hits']} warm hits on replay"
    )

    promo_workloads = (
        PROMOTION_WORKLOADS[:1] if args.quick else PROMOTION_WORKLOADS
    )
    promo_sizes = (
        PROMOTION_TILE_SIZES[:2] if args.quick else PROMOTION_TILE_SIZES
    )
    promo_rows, promo_raw = run_promotion_sweep(promo_workloads, promo_sizes)
    print_table(
        "Promotion pass across targets (cold per target)",
        ["target", "buffers", "seconds", "memo hits", "misses", "hit rate"],
        promo_rows,
    )
    raw["promotion_sweep"] = promo_raw
    save_results("presburger_ops", raw)
    path = save_perf_snapshot(
        "perf_current",
        perf_gauges(raw),
        benchmark="presburger_ops",
        reps=reps,
        size=size,
    )
    print(f"perf snapshot: {path}")

    total_cold = sum(raw["cold_seconds"].values())
    total_warm = sum(raw["memoized_seconds"].values())
    if total_warm >= total_cold:
        print(
            f"FAIL: memoized total {total_warm:.4f}s is not faster than "
            f"cold total {total_cold:.4f}s"
        )
        return 1
    print(
        f"ok: memoized total {total_warm:.4f}s vs cold {total_cold:.4f}s "
        f"({total_cold / total_warm:.1f}x)"
    )
    return 0


def test_presburger_ops(benchmark):
    rows, raw = benchmark.pedantic(
        lambda: run_bench(3, 256), rounds=1, iterations=1
    )
    print_table(
        "Presburger ops, cold vs memoized",
        ["operation", "cold (s)", "memoized (s)", "warm-started (s)", "speedup"],
        rows,
    )
    _, promo_raw = run_promotion_sweep(
        PROMOTION_WORKLOADS[:1], PROMOTION_TILE_SIZES[:2]
    )
    raw["promotion_sweep"] = promo_raw
    save_results("presburger_ops", raw)
    assert sum(raw["memoized_seconds"].values()) < sum(
        raw["cold_seconds"].values()
    )
    assert raw["spill"]["entries_loaded"] > 0
    assert raw["spill"]["warm_hits"] > 0
    for target, r in promo_raw.items():
        assert r["hit_rate"] > 0, target


if __name__ == "__main__":
    sys.exit(main())
