"""Microbenchmark of the presburger fast-path engine (PR: interned
linear algebra + operation memoization).

Times the hot ``BasicMap``/``BasicSet`` operations of the footprint
computation — ``apply_range``, ``intersect``, ``project_out`` and
``is_empty`` — on stencil-shaped relations (tile-containment maps composed
with halo accesses, the exact shape relations (2)-(4) of the paper
produce), in two modes:

* **cold** — every memo table and the LinExpr intern table are cleared
  before each repetition, so every operation runs the full algorithm;
* **memoized** — tables are cleared once, then repetitions replay the
  identical operations and hit the memo layer.

Saves raw numbers to ``benchmarks/results/presburger_ops.json`` and exits
non-zero if the memoized mode is not faster than the cold mode (the CI
smoke job runs ``--quick``).
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from common import print_table, save_results
from repro.presburger import BasicMap, Constraint, LinExpr, MapSpace, memo

V = LinExpr.var


def build_tile_map(h, w, tile):
    """{ T[t0, t1] -> S[i, j] : tile containment and domain bounds }."""
    space = MapSpace("T", ("t0", "t1"), "S", ("i", "j"), ())
    cons = []
    for t, d, n in (("t0", "i", h), ("t1", "j", w)):
        cons.append(Constraint.le(V(t), V(d)))
        cons.append(Constraint.lt(V(d), V(t) + tile))
        cons.append(Constraint.ge(V(d)))
        cons.append(Constraint.lt(V(d), n))
    return BasicMap(space, cons)


def build_stencil_access(h, w, di, dj):
    """{ S[i, j] -> A[i + di, j + dj] : in-bounds }."""
    dom_cons = []
    for d, n in (("i", h), ("j", w)):
        dom_cons.append(Constraint.ge(V(d)))
        dom_cons.append(Constraint.lt(V(d), n))
    space = MapSpace("S", ("i", "j"), "A", ("a0", "a1"), ())
    cons = dom_cons + [
        Constraint.eq(V("a0") - V("i") - di),
        Constraint.eq(V("a1") - V("j") - dj),
    ]
    return BasicMap(space, cons)


def build_workload(size):
    """Stencil-shaped (tile map, access map) pairs as the footprint loop
    sees them: one tile relation composed with every halo tap."""
    tile_maps = [build_tile_map(size, size, t) for t in (16, 32, 64)]
    taps = [(di, dj) for di in (-1, 0, 1, 2) for dj in (-1, 0, 1, 2)]
    accesses = [build_stencil_access(size, size, di, dj) for di, dj in taps]
    return [(tm, am) for tm in tile_maps for am in accesses]


def run_once(pairs):
    """One repetition of the footprint-shaped operation mix."""
    t_apply = t_empty = t_intersect = t_project = 0.0
    footprints = []
    t0 = time.perf_counter()
    for tm, am in pairs:
        footprints.append(tm.apply_range(am))
    t_apply = time.perf_counter() - t0

    t0 = time.perf_counter()
    for fp in footprints:
        fp.is_empty()
    t_empty = time.perf_counter() - t0

    t0 = time.perf_counter()
    for a, b in zip(footprints, footprints[1:]):
        a.intersect(b)
    t_intersect = time.perf_counter() - t0

    t0 = time.perf_counter()
    for fp in footprints[:: max(1, len(footprints) // 8)]:
        fp.wrap().project_out(fp.space.in_dims)
    t_project = time.perf_counter() - t0
    return {
        "apply_range": t_apply,
        "is_empty": t_empty,
        "intersect": t_intersect,
        "project_out": t_project,
    }


def accumulate(total, part):
    for k, v in part.items():
        total[k] = total.get(k, 0.0) + v
    return total


def run_bench(reps, size):
    pairs = build_workload(size)

    cold = {}
    for _ in range(reps):
        memo.clear_all()
        accumulate(cold, run_once(pairs))

    memo.clear_all()
    run_once(pairs)  # populate the tables once
    warm = {}
    for _ in range(reps):
        accumulate(warm, run_once(pairs))

    ops = sorted(cold)
    rows = []
    for op in ops:
        speedup = cold[op] / warm[op] if warm[op] > 0 else float("inf")
        rows.append(
            [op, f"{cold[op]:.4f}", f"{warm[op]:.4f}", f"{speedup:.1f}x"]
        )
    raw = {
        "reps": reps,
        "size": size,
        "pairs": len(pairs),
        "cold_seconds": cold,
        "memoized_seconds": warm,
        "memo_stats": memo.stats(),
    }
    return rows, raw


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer repetitions on a smaller problem",
    )
    ap.add_argument("--reps", type=int, default=None)
    ap.add_argument("--size", type=int, default=None)
    args = ap.parse_args(argv)
    reps = args.reps if args.reps is not None else (3 if args.quick else 10)
    size = args.size if args.size is not None else (256 if args.quick else 1024)

    rows, raw = run_bench(reps, size)
    print_table(
        f"Presburger ops, cold vs memoized ({reps} reps, size {size})",
        ["operation", "cold (s)", "memoized (s)", "speedup"],
        rows,
    )
    save_results("presburger_ops", raw)

    total_cold = sum(raw["cold_seconds"].values())
    total_warm = sum(raw["memoized_seconds"].values())
    if total_warm >= total_cold:
        print(
            f"FAIL: memoized total {total_warm:.4f}s is not faster than "
            f"cold total {total_cold:.4f}s"
        )
        return 1
    print(
        f"ok: memoized total {total_warm:.4f}s vs cold {total_cold:.4f}s "
        f"({total_cold / total_warm:.1f}x)"
    )
    return 0


def test_presburger_ops(benchmark):
    rows, raw = benchmark.pedantic(
        lambda: run_bench(3, 256), rounds=1, iterations=1
    )
    print_table(
        "Presburger ops, cold vs memoized",
        ["operation", "cold (s)", "memoized (s)", "speedup"],
        rows,
    )
    save_results("presburger_ops", raw)
    assert sum(raw["memoized_seconds"].values()) < sum(
        raw["cold_seconds"].values()
    )


if __name__ == "__main__":
    sys.exit(main())
