"""Cache-fabric benchmark: shared remote tier, write-behind hot path.

The fabric's claim is sccache-shaped: once *any* node has compiled a
fingerprint, every other node serves it from the shared remote tier at
cache-fetch latency instead of recompiling — and the remote tier never
taxes the compile hot path, because writes are published behind a
bounded queue and a dead remote degrades to plain local caching.

Three measurements:

* **fresh-process tiers** — for each workload of the paper's sweep, a
  cold compile (fresh local dir, empty remote), then the same compile in
  a new process with a *different* fresh local dir sharing the now-warm
  remote tier (remote-warm), then once more in that process's dir
  (local-warm after backfill).  Schedule trees must hash identically
  across all three; the remote-warm aggregate must be >= 5x faster than
  cold.
* **two daemons** — compile server A (its own local tier + the shared
  remote) compiles the sweep; server B, with a cold local tier on the
  same remote, must answer every workload ``from_cache`` with zero real
  compiles and a positive remote-hit count.
* **put latency** — median ``CompileCache.put`` with a local-only store
  vs. the layered fabric (remote up, and remote dead): write-behind must
  keep the layered put in the same order of magnitude as the local one,
  and a dead remote must not fail or slow a single request.

Results land in ``benchmarks/results/cache_fabric.json``.
"""

import argparse
import json
import os
import secrets
import statistics
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_compile_cache import QUICK_WARM_START_WORKLOADS, WARM_START_WORKLOADS
from common import print_table, save_results
from repro.service import CompileCache, StoreServer, resolve_cache

SRC = os.path.join(os.path.dirname(__file__), "..", "src")

#: Subprocess payload: one serial ``compile_batch`` against an arbitrary
#: cache spec, in a genuinely fresh process (fresh memo tables, fresh
#: memory tier — only the spec'd stores carry state in).
_CHILD = """
import hashlib, json, sys, time
from repro.api import CompileOptions, default_tile_sizes, get_workload
from repro.codegen import print_tree
from repro.service import CompileRequest, compile_batch, resolve_cache

name, size, spec = sys.argv[1], int(sys.argv[2]), sys.argv[3]
prog = get_workload(name, size)
cache = resolve_cache(spec)
request = CompileRequest(prog, "cpu", default_tile_sizes(name))
t0 = time.perf_counter()
(outcome,) = compile_batch([request], options=CompileOptions(mode="serial", cache=cache))
elapsed = time.perf_counter() - t0
assert outcome.ok, outcome.error
cache.flush(30.0)
tree = print_tree(outcome.result.tree, prog)
json.dump({
    "seconds": elapsed,
    "from_cache": outcome.from_cache,
    "remote_hits": cache.stats.remote_hits,
    "disk_hits": cache.stats.disk_hits,
    "tree_sha": hashlib.sha256(tree.encode()).hexdigest(),
}, sys.stdout)
cache.close()
"""


def _compile_in_subprocess(name: str, size: int, spec: str) -> dict:
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, name, str(size), spec],
        capture_output=True,
        env=env,
        timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"{name}: child failed\n{proc.stderr.decode()}")
    return json.loads(proc.stdout)


def measure_tiers(workloads):
    """Cold vs. remote-warm vs. local-warm, each in a fresh process."""
    rows, raw = [], {}
    for name, size in workloads:
        with tempfile.TemporaryDirectory() as tmp:
            with StoreServer(os.path.join(tmp, "remote")) as srv:
                spec_a = f"tiered:{os.path.join(tmp, 'node_a')}|{srv.url}"
                spec_b = f"tiered:{os.path.join(tmp, 'node_b')}|{srv.url}"
                cold = _compile_in_subprocess(name, size, spec_a)
                remote_warm = _compile_in_subprocess(name, size, spec_b)
                local_warm = _compile_in_subprocess(name, size, spec_b)
        assert not cold["from_cache"], (name, cold)
        assert remote_warm["from_cache"], (name, remote_warm)
        assert remote_warm["remote_hits"] >= 1, (name, remote_warm)
        assert local_warm["from_cache"], (name, local_warm)
        assert local_warm["remote_hits"] == 0, (name, local_warm)  # backfilled
        # bit-identical results regardless of which tier served them
        assert cold["tree_sha"] == remote_warm["tree_sha"] == local_warm["tree_sha"], name
        raw[name] = {
            "cold_seconds": cold["seconds"],
            "remote_warm_seconds": remote_warm["seconds"],
            "local_warm_seconds": local_warm["seconds"],
            "speedup_remote": cold["seconds"] / remote_warm["seconds"]
            if remote_warm["seconds"] else float("inf"),
            "tree_sha": cold["tree_sha"],
        }
        rows.append(
            [
                name,
                f"{cold['seconds'] * 1e3:.1f}",
                f"{remote_warm['seconds'] * 1e3:.1f}",
                f"{local_warm['seconds'] * 1e3:.1f}",
                f"{raw[name]['speedup_remote']:.1f}x",
            ]
        )
    return rows, raw


def measure_two_daemons(workloads):
    """Server A compiles the sweep; server B answers it all from the
    shared remote tier without compiling anything."""
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread

    sweep = [(n, min(s, 128)) for n, s in workloads]
    with tempfile.TemporaryDirectory() as tmp:
        with StoreServer(os.path.join(tmp, "remote")) as srv:
            cfg_a = ServeConfig(
                socket_path=os.path.join(tmp, "a.sock"),
                cache=f"tiered:{os.path.join(tmp, 'node_a')}|{srv.url}",
            )
            t0 = time.perf_counter()
            with ServerThread(cfg_a) as st_a:
                with ServeClient(socket_path=cfg_a.socket_path) as client:
                    for name, size in sweep:
                        out = client.compile(name, size=size)
                        assert out.get("error") is None, (name, out)
                # leaving the block drains A, flushing the write-behind
                # queue to the remote tier
            a_seconds = time.perf_counter() - t0
            a_compiles = st_a.server.registry.counters.get("serve.compiles", 0)

            cfg_b = ServeConfig(
                socket_path=os.path.join(tmp, "b.sock"),
                cache=f"tiered:{os.path.join(tmp, 'node_b')}|{srv.url}",
            )
            t0 = time.perf_counter()
            with ServerThread(cfg_b) as st_b:
                with ServeClient(socket_path=cfg_b.socket_path) as client:
                    for name, size in sweep:
                        out = client.compile(name, size=size)
                        assert out["from_cache"], (name, out)
                b_remote_hits = st_b.server.cache.stats.remote_hits
            b_seconds = time.perf_counter() - t0
            b_compiles = st_b.server.registry.counters.get("serve.compiles", 0)

    assert b_compiles == 0, f"daemon B compiled {b_compiles} workloads"
    assert b_remote_hits >= len(sweep)
    raw = {
        "workloads": len(sweep),
        "daemon_a_seconds": a_seconds,
        "daemon_a_compiles": a_compiles,
        "daemon_b_seconds": b_seconds,
        "daemon_b_compiles": b_compiles,
        "daemon_b_remote_hits": b_remote_hits,
        "speedup": a_seconds / b_seconds if b_seconds else float("inf"),
    }
    rows = [
        ["A (cold)", len(sweep), a_compiles, f"{a_seconds:.2f}"],
        ["B (shared tier)", len(sweep), b_compiles, f"{b_seconds:.2f}"],
    ]
    return rows, raw


def _median_put_ms(cache, n: int = 40) -> float:
    """Median latency of n distinct-key puts (distinct so the
    content-addressed skip never short-circuits the write)."""
    payload = {"blob": os.urandom(32 * 1024)}
    samples = []
    for _ in range(n):
        key = secrets.token_hex(32)
        t0 = time.perf_counter()
        cache.put(key, payload)
        samples.append((time.perf_counter() - t0) * 1e3)
    return statistics.median(samples)


def measure_put_latency():
    """Local-only vs. layered (remote up / remote dead) put latency."""
    import logging

    logging.getLogger("repro.cache").setLevel(logging.ERROR)
    with tempfile.TemporaryDirectory() as tmp:
        local = CompileCache(cache_dir=os.path.join(tmp, "local"))
        local_ms = _median_put_ms(local)

        with StoreServer(os.path.join(tmp, "remote")) as srv:
            tiered = resolve_cache(
                f"tiered:{os.path.join(tmp, 'node')}|{srv.url}"
            )
            tiered_ms = _median_put_ms(tiered)
            flushed = tiered.flush(30.0)
            tiered.close()

        # a dead remote must degrade, not fail or stall
        dead = resolve_cache(
            f"tiered:{os.path.join(tmp, 'dead_node')}|http://127.0.0.1:9"
        )
        dead_ms = _median_put_ms(dead)
        assert dead.get(secrets.token_hex(32)) is None  # still no exception
        down_skips = dict(dead.tier_metrics())["layered"].get("remote_down_skips")
        dead.close()

    raw = {
        "local_put_ms": local_ms,
        "tiered_put_ms": tiered_ms,
        "dead_remote_put_ms": dead_ms,
        "flushed": flushed,
        "dead_remote_down_skips": down_skips,
        "overhead_ratio": tiered_ms / local_ms if local_ms else float("inf"),
    }
    rows = [
        ["local only", f"{local_ms:.3f}"],
        ["layered (remote up)", f"{tiered_ms:.3f}"],
        ["layered (remote dead)", f"{dead_ms:.3f}"],
    ]
    return rows, raw


def run(quick: bool = False):
    workloads = QUICK_WARM_START_WORKLOADS if quick else WARM_START_WORKLOADS
    tier_rows, tier_raw = measure_tiers(workloads)
    print_table(
        "Fresh-process compile by tier (ms)",
        ["benchmark", "cold", "remote-warm", "local-warm", "remote speedup"],
        tier_rows,
    )
    daemon_rows, daemon_raw = measure_two_daemons(workloads)
    print_table(
        "Two compile daemons, one shared remote tier",
        ["daemon", "workloads", "compiles", "wall (s)"],
        daemon_rows,
    )
    put_rows, put_raw = measure_put_latency()
    print_table(
        "Median put latency (ms): write-behind stays off the hot path",
        ["store", "put"],
        put_rows,
    )
    raw = {"tiers": tier_raw, "daemons": daemon_raw, "put_latency": put_raw}
    path = save_results("cache_fabric", raw)
    print(f"saved {path}")
    return raw


def _check(raw) -> int:
    """The smoke assertions CI runs; returns a shell exit code."""
    total_cold = sum(r["cold_seconds"] for r in raw["tiers"].values())
    total_remote = sum(r["remote_warm_seconds"] for r in raw["tiers"].values())
    speedup = total_cold / total_remote if total_remote else float("inf")
    if speedup < 5.0:
        print(
            f"FAIL: remote-warm total {total_remote:.3f}s is only "
            f"{speedup:.2f}x faster than cold {total_cold:.3f}s (need >= 5x)"
        )
        return 1
    if raw["daemons"]["daemon_b_compiles"] != 0:
        print("FAIL: the second daemon compiled instead of using the shared tier")
        return 1
    ratio = raw["put_latency"]["overhead_ratio"]
    if ratio > 10.0:
        print(
            f"FAIL: layered put is {ratio:.1f}x the local put "
            "(write-behind is on the hot path?)"
        )
        return 1
    print(
        f"ok: remote-warm {speedup:.1f}x vs cold; daemon B answered "
        f"{raw['daemons']['daemon_b_remote_hits']} workloads with 0 compiles; "
        f"layered put {ratio:.2f}x local"
    )
    return 0


def test_cache_fabric(benchmark):
    raw = benchmark.pedantic(lambda: run(quick=True), rounds=1, iterations=1)
    assert _check(raw) == 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: three workloads instead of the 15-workload sweep",
    )
    args = ap.parse_args(argv)
    return _check(run(quick=args.quick))


if __name__ == "__main__":
    sys.exit(main())
