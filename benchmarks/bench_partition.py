"""Heterogeneous partitioning benchmark: mixed vs. single-target cost.

The partitioner's claim is that on pipelines mixing NPU-shaped work
(large-kernel convolutions with cube-worthy arithmetic intensity) with
stages the NPU cannot express (in-place quantisation), a mixed
cpu/gpu/npu assignment beats *every* legal single-target compile in
modeled execution time — transfer costs included, priced from the exact
Presburger footprint of each cut edge.

This benchmark partitions the two engineered mixed workloads at full
size, prints the assignment, cut edges and modeled mixed-vs-single
costs, verifies host-glue parity at a small size (the multi-target
interpreter run must be bit-identical to a single-target reference),
and exits non-zero if either claim fails.  Results land in
``benchmarks/results/partition.json``.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from common import print_table, save_results
from repro import CompileOptions, PartitionOptions, partition_pipeline
from repro.codegen import run_program
from repro.core import optimize
from repro.partition import execute_partitioned
from repro.pipelines.mixed import MIXED_BUILDERS
from repro.workloads import build_workload, default_tile_sizes

WORKLOADS = ("camera_resnet", "edge_infer")

#: Small builds for the parity check (full-size interpretation is slow).
PARITY_SIZE, PARITY_K = 40, 5


def bench_modeled(name: str) -> dict:
    prog = build_workload(name)
    sched = partition_pipeline(
        prog, PartitionOptions(tile_sizes=default_tile_sizes(name))
    )
    mixed = sched.modeled["mixed"]
    single = sched.modeled["single"]
    beaten = [
        t for t, s in single.items()
        if s is not None and mixed["total_seconds"] < s
    ]
    legal = [t for t, s in single.items() if s is not None]
    return {
        "workload": name,
        "assignment": dict(sched.assignment),
        "targets_used": list(sched.targets_used),
        "partitions": len(sched.partitions),
        "cuts": [c.as_dict() for c in sched.cuts],
        "mixed_seconds": mixed["total_seconds"],
        "transfer_seconds": mixed["transfer_seconds"],
        "single_seconds": dict(single),
        "beats_all_single": sorted(beaten) == sorted(legal) and bool(legal),
    }


def check_parity(name: str) -> bool:
    prog = MIXED_BUILDERS[name](PARITY_SIZE, k=PARITY_K)
    sched = partition_pipeline(prog, PartitionOptions(tile_sizes=(8, 8)))
    host, _, _ = execute_partitioned(sched, seed=11)
    ref = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
    ref_store, _ = run_program(prog, ref.tree, seed=11)
    return all(np.array_equal(host[t], ref_store[t]) for t in prog.tensors)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single workload, assertions only")
    args = parser.parse_args()
    names = WORKLOADS[:1] if args.quick else WORKLOADS

    results, rows, failed = [], [], []
    for name in names:
        r = bench_modeled(name)
        r["parity"] = check_parity(name)
        results.append(r)
        singles = ", ".join(
            f"{t}={'illegal' if s is None else f'{s * 1e6:.0f}us'}"
            for t, s in sorted(r["single_seconds"].items())
        )
        rows.append([
            name,
            "+".join(r["targets_used"]),
            f"{r['mixed_seconds'] * 1e6:.0f}us",
            singles,
            "yes" if r["beats_all_single"] else "NO",
            "ok" if r["parity"] else "MISMATCH",
        ])
        if not r["beats_all_single"]:
            failed.append(f"{name}: mixed does not beat every single target")
        if not r["parity"]:
            failed.append(f"{name}: multi-target execution diverged")

    print_table(
        "heterogeneous partitioning (modeled)",
        ["workload", "targets", "mixed", "single-target", "beats all", "parity"],
        rows,
    )
    save_results("partition", results)
    for msg in failed:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
