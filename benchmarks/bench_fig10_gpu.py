"""Figure 10 (and Table I's GPU columns) — PolyMage benchmarks on GPU.

Speedup over PPCG's minfuse baseline for smartfuse, maxfuse, Halide's
manual schedule, and our work.  Shape expectations: ours beats Halide on
average (~+17% in the paper) except on Bilateral Grid and Unsharp Mask
where Halide's manual unrolling wins slightly; maxfuse collapses when it
costs parallelism.
"""

from common import (
    GPU,
    IMAGE_PIPELINES,
    gpu_time,
    fmt_speedup,
    halide_gpu_time,
    image_program,
    our_gpu_work,
    print_table,
    save_results,
)
from repro.machine import analyze_scheduled
from repro.scheduler import MAXFUSE, MINFUSE, SMARTFUSE, schedule_program

VERSIONS = ("smartfuse", "maxfuse", "Halide", "ours")


def compute_fig10():
    rows = []
    raw = {}
    for name in sorted(IMAGE_PIPELINES):
        mod, prog = image_program(name)
        ts = mod.TILE_SIZES

        t_min = gpu_time(analyze_scheduled(schedule_program(prog, MINFUSE), ts))
        t_smart = gpu_time(analyze_scheduled(schedule_program(prog, SMARTFUSE), ts))
        t_max = gpu_time(analyze_scheduled(schedule_program(prog, MAXFUSE), ts))
        t_halide = halide_gpu_time(mod, prog, ts, name)
        w_ours, _ = our_gpu_work(prog, ts)
        t_ours = gpu_time(w_ours)

        speedups = {
            "smartfuse": t_min / t_smart,
            "maxfuse": t_min / t_max,
            "Halide": t_min / t_halide,
            "ours": t_min / t_ours,
        }
        raw[name] = {"minfuse_ms": t_min * 1e3, **speedups}
        rows.append([name] + [fmt_speedup(speedups[v]) for v in VERSIONS])
    return rows, raw


def test_fig10_gpu(benchmark):
    rows, raw = benchmark.pedantic(compute_fig10, rounds=1, iterations=1)
    print_table(
        "Fig. 10: GPU speedup over PPCG minfuse (modeled Quadro P6000)",
        ["benchmark"] + list(VERSIONS),
        rows,
    )
    save_results("fig10_gpu", raw)

    ours_vs_halide = [r["ours"] / r["Halide"] for r in raw.values()]
    geo = 1.0
    for x in ours_vs_halide:
        geo *= x
    # ours beats Halide on average (paper: +17%).  The paper's one nuance —
    # Halide *slightly* winning BG and UM through manual channel unrolling —
    # is microarchitectural ILP below this model's resolution; we apply a
    # small modeled bonus but the structural fusion advantage dominates
    # (recorded as a deviation in EXPERIMENTS.md).
    assert geo ** (1 / len(ours_vs_halide)) > 1.0
    # maxfuse never beats ours (parallelism loss)
    for name, r in raw.items():
        assert r["ours"] >= r["maxfuse"] * 0.99, name
    # smartfuse sits between minfuse and ours everywhere
    for name, r in raw.items():
        assert r["smartfuse"] >= 1.0, name
        assert r["ours"] >= r["smartfuse"] * 0.85, name


if __name__ == "__main__":
    rows, _ = compute_fig10()
    print_table("Fig. 10", ["benchmark"] + list(VERSIONS), rows)
