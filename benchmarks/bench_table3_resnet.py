"""Table III — ResNet-50 on the DaVinci-style AI accelerator.

Execution time of all forward conv+batchnorm pairs and of the entire
workload, under smartfuse (which fails to fuse convolutions with their
batchnorms) and our post-tiling fusion; plus the compilation time of
lowering every operator pair through the two passes.  Shape expectations:
conv+bn ~1.7x, entire workload ~1.16x, our compile time below smartfuse's.
"""

import time

from common import fmt_ms, print_table, save_results
from repro import CompileOptions
from repro.core import optimize
from repro.machine import conv_bn_time, network_time
from repro.pipelines import resnet
from repro.scheduler import SMARTFUSE, schedule_program

#: Operator time the fusion does not touch (pooling, fc, elementwise adds,
#: backward pass of this training epoch step), calibrated so the unfused
#: fwd conv+bn share matches the paper's ratio (11.50 of 35.03 ms).
OTHER_OPS_SECONDS = 0.00972


def compute_table3():
    layers = resnet.resnet50_layers()

    fwd_fused = sum(conv_bn_time(l, fused=True) for l in layers)
    fwd_unfused = sum(conv_bn_time(l, fused=False) for l in layers)
    total_fused = network_time(layers, True, OTHER_OPS_SECONDS)
    total_unfused = network_time(layers, False, OTHER_OPS_SECONDS)

    # Compilation: lower a representative operator pair per layer through
    # both passes, including code generation (tree scanning).  smartfuse
    # leaves two computation spaces per pair for the generator to scan;
    # our pass leaves one fused space (Section VI-D attributes the
    # ResNet-50 compile-time win to exactly this).
    from repro.codegen import print_tree

    pair = resnet.build_operator_pair(32, 32)
    t0 = time.perf_counter()
    for _ in range(len(layers)):
        sched = schedule_program(pair, SMARTFUSE)
        print_tree(sched.tree, pair, style="openmp")
    compile_smart = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(len(layers)):
        res = optimize(pair, CompileOptions(target="npu", tile_sizes=(8, 8)))
        print_tree(res.tree, pair, style="openmp")
    compile_ours = time.perf_counter() - t0

    raw = {
        "fwd_conv_bn_smart_ms": fwd_unfused * 1e3,
        "fwd_conv_bn_ours_ms": fwd_fused * 1e3,
        "fwd_speedup": fwd_unfused / fwd_fused,
        "entire_smart_ms": total_unfused * 1e3,
        "entire_ours_ms": total_fused * 1e3,
        "entire_speedup": total_unfused / total_fused,
        "compile_smart_s": compile_smart,
        "compile_ours_s": compile_ours,
    }
    rows = [
        [
            "fwd conv+batchnorm",
            fmt_ms(fwd_unfused),
            fmt_ms(fwd_fused),
            f"{raw['fwd_speedup']:.2f}x",
            "-",
            "-",
        ],
        [
            "entire workload",
            fmt_ms(total_unfused),
            fmt_ms(total_fused),
            f"{raw['entire_speedup']:.2f}x",
            f"{compile_smart:.2f}",
            f"{compile_ours:.2f}",
        ],
    ]
    return rows, raw


def test_table3_resnet(benchmark):
    rows, raw = benchmark.pedantic(compute_table3, rounds=1, iterations=1)
    print_table(
        "Table III: ResNet-50 on the modeled Ascend 910 (53 conv+bn pairs)",
        ["workload", "smartfuse ms", "ours ms", "speedup", "smart compile s", "ours compile s"],
        rows,
    )
    save_results("table3_resnet", raw)

    # Paper: 1.72x on the pairs, 1.16x end to end; we accept the band.
    assert 1.3 < raw["fwd_speedup"] < 2.2
    assert 1.05 < raw["entire_speedup"] < 1.5
    assert raw["compile_ours_s"] < raw["compile_smart_s"] * 2.0


def test_operator_pair_fuses(benchmark):
    def run():
        pair = resnet.build_operator_pair(16, 16)
        return optimize(pair, CompileOptions(target="npu", tile_sizes=(4, 4)))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.fusion_summary() == [["Sconv0", "Sconv1", "Sbn"]]


if __name__ == "__main__":
    rows, _ = compute_table3()
    print_table("Table III", ["workload", "smart", "ours", "speedup", "smart_s", "ours_s"], rows)
