"""Make the shared benchmark helpers and the src tree importable."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
