"""Figure 9 — equake (FEM / 3D SpMV) on CPU, 32 cores.

Speedup over the baseline (naive sequential SpMV pipeline) for PPCG's
minfuse / smartfuse / maxfuse groupings (as published in Section VI-A) and
for our pass.  Shape expectations: minfuse < smartfuse < maxfuse <= ours;
our pass fuses at least the maxfuse grouping (gather + follow-up nests)
without any manual preprocessing.
"""

from common import cpu_time, fmt_speedup, naive_work, print_table, save_results
from repro import CompileOptions
from repro.baselines import scheduled_from_partition
from repro.core import optimize
from repro.machine import analyze_optimized, analyze_scheduled
from repro.pipelines import equake

THREADS = 32
SIZES = ("test", "train", "ref")


def compute_fig9():
    rows = []
    raw = {}
    for size in SIZES:
        prog = equake.build(size)
        base = cpu_time(naive_work(prog), THREADS)
        entry = {}
        for heuristic, partition in equake.PARTITIONS.items():
            sched = scheduled_from_partition(prog, partition)
            # only the outermost loop is tilable: no tiling applied (paper)
            t = cpu_time(analyze_scheduled(sched, None), THREADS)
            entry[heuristic] = base / t
        ours = optimize(prog, CompileOptions(target="cpu", tile_sizes=None))
        t_ours = cpu_time(analyze_optimized(ours), THREADS)
        entry["ours"] = base / t_ours
        raw[size] = entry
        rows.append(
            [size]
            + [fmt_speedup(entry[v]) for v in ("minfuse", "smartfuse", "maxfuse", "ours")]
        )
    return rows, raw


def test_fig9_equake(benchmark):
    rows, raw = benchmark.pedantic(compute_fig9, rounds=1, iterations=1)
    print_table(
        "Fig. 9: equake speedup over baseline (32 cores)",
        ["size", "minfuse", "smartfuse", "maxfuse", "ours"],
        rows,
    )
    save_results("fig9_equake", raw)

    for size, r in raw.items():
        assert r["minfuse"] <= r["smartfuse"] + 1e-9, size
        assert r["smartfuse"] <= r["maxfuse"] + 1e-9, size
        # ours matches or beats the maxfuse grouping, automatically
        assert r["ours"] >= r["maxfuse"] * 0.99, size


if __name__ == "__main__":
    rows, _ = compute_fig9()
    print_table("Fig. 9", ["size", "minfuse", "smartfuse", "maxfuse", "ours"], rows)
