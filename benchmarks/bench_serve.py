"""Compile-server benchmark: cold vs. warm request latency and the
effectiveness of single-flight dedup under a thundering herd.

The serve subsystem's claim is twofold.  First, a long-lived daemon
amortizes warm state *across* invocations: a repeat compile answers from
the in-process LRU in a few milliseconds instead of re-running the pass
(acceptance: warm repeat < 50 ms, client-observed, socket round trip
included).  Second, identical requests that arrive *while one is already
compiling* collapse onto that compile: 8 concurrent clients asking for
the same fresh fingerprint cost exactly 1 compile and 7 dedup hits —
counted by the server's own live ``stats`` endpoint, which is also how
the numbers here are gathered.

The daemon runs in-process on a background thread with an isolated cache
directory (nothing leaks into ``~/.cache/repro``); clients are real
blocking sockets.  Results land in ``benchmarks/results/serve.json`` and
a ``repro-metrics/1`` snapshot in ``benchmarks/results/serve_perf.json``.
"""

import argparse
import os
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from common import print_table, save_perf_snapshot, save_results

from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServerThread
from repro.service import CompileCache

#: (workload, size) measured for cold/warm latency.
LATENCY_WORKLOADS = [
    ("conv2d", 64),
    ("atax", 256),
    ("harris", 256),
    ("unsharp_mask", 256),
]
QUICK_LATENCY_WORKLOADS = LATENCY_WORKLOADS[:2]

#: The herd compiles this (workload, size, tiles) — tile sizes no latency
#: run uses, so the fingerprint is cold when the 8 clients race for it.
HERD = ("harris", 512, [48, 48])
WARM_REPEATS = 5
HERD_CLIENTS = 8


def measure_latency(sock, workloads):
    rows, raw = [], {}
    with ServeClient(socket_path=sock) as client:
        for name, size in workloads:
            t0 = time.perf_counter()
            cold_reply = client.compile(name, size=size)
            cold = time.perf_counter() - t0
            assert cold_reply["from_cache"] is False, (name, cold_reply)
            warm_samples = []
            for _ in range(WARM_REPEATS):
                t0 = time.perf_counter()
                reply = client.compile(name, size=size)
                warm_samples.append(time.perf_counter() - t0)
                assert reply["from_cache"] is True, (name, reply)
            warm = min(warm_samples)
            raw[name] = {
                "size": size,
                "cold_seconds": cold,
                "warm_seconds": warm,
                "speedup": cold / warm,
            }
            rows.append(
                [name, size, f"{cold * 1e3:9.1f}", f"{warm * 1e3:9.2f}",
                 f"{cold / warm:8.1f}x"]
            )
    return rows, raw


def measure_dedup(sock):
    """8 clients, one barrier, one fresh fingerprint: count real compiles."""
    workload, size, tiles = HERD
    with ServeClient(socket_path=sock) as probe:
        before = probe.stats()["counters"]
    barrier = threading.Barrier(HERD_CLIENTS)
    replies, errors = [], []

    def one(client):
        try:
            barrier.wait(30)
            replies.append(
                client.compile(workload, size=size, tile_sizes=tiles)
            )
        except Exception as exc:  # pragma: no cover - surfaced in _check
            errors.append(repr(exc))
        finally:
            client.close()

    # Connect everyone *before* the barrier so the requests hit the
    # server within microseconds of each other.
    clients = [ServeClient(socket_path=sock) for _ in range(HERD_CLIENTS)]
    threads = [
        threading.Thread(target=one, args=(c,)) for c in clients
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    wall = time.perf_counter() - t0
    with ServeClient(socket_path=sock) as probe:
        after = probe.stats()["counters"]

    def delta(key):
        return after.get(key, 0) - before.get(key, 0)

    return {
        "workload": workload,
        "size": size,
        "clients": HERD_CLIENTS,
        "errors": errors,
        "replies": len(replies),
        "deduped_replies": sum(bool(r.get("deduped")) for r in replies),
        "compiles": delta("serve.compiles"),
        "dedup_hits": delta("serve.dedup_hits"),
        "cache_hits": delta("serve.cache_hits"),
        "herd_wall_seconds": wall,
    }


def run(quick=False):
    workloads = QUICK_LATENCY_WORKLOADS if quick else LATENCY_WORKLOADS
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        config = ServeConfig(
            socket_path=os.path.join(tmp, "serve.sock"),
            cache=CompileCache(cache_dir=os.path.join(tmp, "cache")),
            workers=2,
        )
        with ServerThread(config):
            rows, latency = measure_latency(config.socket_path, workloads)
            print_table(
                "Compile-server latency (client-observed, over unix socket)",
                ["workload", "size", "cold ms", "warm ms", "speedup"],
                rows,
            )
            dedup = measure_dedup(config.socket_path)
    print(
        f"thundering herd: {dedup['clients']} identical requests -> "
        f"{dedup['compiles']} compile(s), {dedup['dedup_hits']} dedup hits, "
        f"{dedup['cache_hits']} cache hits "
        f"in {dedup['herd_wall_seconds']:.3f}s wall"
    )
    return {"latency": latency, "dedup": dedup}


def _check(raw) -> int:
    failures = []
    for name, r in raw["latency"].items():
        # acceptance: warm repeats answer from the in-process cache fast
        if r["warm_seconds"] >= 0.050:
            failures.append(
                f"{name}: warm repeat took {r['warm_seconds'] * 1e3:.1f} ms "
                "(>= 50 ms)"
            )
    dedup = raw["dedup"]
    if dedup["errors"]:
        failures.append(f"herd clients errored: {dedup['errors']}")
    if dedup["replies"] != dedup["clients"]:
        failures.append(
            f"only {dedup['replies']}/{dedup['clients']} herd replies arrived"
        )
    # acceptance: one compile, every other request deduped onto it
    if dedup["compiles"] != 1:
        failures.append(f"herd cost {dedup['compiles']} compiles, wanted 1")
    if dedup["dedup_hits"] != dedup["clients"] - 1:
        failures.append(
            f"dedup counter is {dedup['dedup_hits']}, "
            f"wanted {dedup['clients'] - 1}"
        )
    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        warm = min(r["warm_seconds"] for r in raw["latency"].values())
        print(
            f"ok: warm repeat {warm * 1e3:.2f} ms, "
            f"{dedup['clients']} concurrent identical requests -> "
            f"{dedup['compiles']} compile + {dedup['dedup_hits']} dedup hits"
        )
    return 1 if failures else 0


def test_serve_bench(benchmark):
    raw = benchmark.pedantic(lambda: run(quick=True), rounds=1, iterations=1)
    assert _check(raw) == 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: two latency workloads only",
    )
    args = ap.parse_args(argv)
    raw = run(quick=args.quick)
    save_results("serve", raw)
    gauges = {
        f"serve.{name}.{kind}_seconds": r[f"{kind}_seconds"]
        for name, r in raw["latency"].items()
        for kind in ("cold", "warm")
    }
    gauges["serve.herd_wall_seconds"] = raw["dedup"]["herd_wall_seconds"]
    path = save_perf_snapshot(
        "serve_perf",
        gauges,
        benchmark="serve",
        clients=raw["dedup"]["clients"],
        quick=bool(args.quick),
    )
    print(f"perf snapshot: {path}")
    return _check(raw)


if __name__ == "__main__":
    sys.exit(main())
