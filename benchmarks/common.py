"""Shared harness for the paper-reproduction benchmarks.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation: it builds the workloads, runs the paper's pass and every
baseline, evaluates the machine models, prints the table in the paper's
layout and saves the raw numbers to ``benchmarks/results/*.json`` (which
EXPERIMENTS.md references).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import CompileOptions
from repro.baselines import (
    halide_result,
    naive_work,
    partitioned_result,
    polymage_work,
    scheduled_from_partition,
)
from repro.core import GPU, CPU, optimize
from repro.machine import (
    ProgramWork,
    analyze_optimized,
    analyze_scheduled,
    cpu_time,
    gpu_time,
)
from repro.pipelines import IMAGE_PIPELINES
from repro.scheduler import (
    HYBRIDFUSE,
    MAXFUSE,
    MINFUSE,
    SMARTFUSE,
    SchedulerError,
    schedule_program,
)

BENCH_SIZE = 1024
#: The 8-level pyramid of multiscale interpolation needs the full image.
BENCH_SIZES = {"multiscale_interp": 2048}
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Modeled instruction-level-parallelism bonus of Halide's manual unrolling
#: of the channel dimension (Section VI-B) — applies on GPU only.
HALIDE_UNROLL_BONUS = {"bilateral_grid": 1.12, "unsharp_mask": 1.10}


def image_program(name: str, size: Optional[int] = None):
    mod = IMAGE_PIPELINES[name]
    if size is None:
        size = BENCH_SIZES.get(name, BENCH_SIZE)
    return mod, mod.build(size)


def our_cpu_work(prog, tile_sizes) -> Tuple[ProgramWork, float]:
    result = optimize(prog, CompileOptions(target="cpu", tile_sizes=tile_sizes))
    return analyze_optimized(result), result.compile_seconds


def our_gpu_work(prog, tile_sizes) -> Tuple[ProgramWork, float]:
    result = optimize(prog, CompileOptions(target="gpu", tile_sizes=tile_sizes))
    return analyze_optimized(result), result.compile_seconds


def heuristic_cpu_work(prog, heuristic, tile_sizes) -> Tuple[ProgramWork, float]:
    t0 = time.perf_counter()
    sched = schedule_program(prog, heuristic)
    elapsed = time.perf_counter() - t0
    return analyze_scheduled(sched, tile_sizes), elapsed


def halide_cpu_work(mod, prog, tile_sizes) -> ProgramWork:
    res = halide_result(prog, mod.halide_partition(prog), tile_sizes, CPU)
    return analyze_optimized(res)


def halide_gpu_time(mod, prog, tile_sizes, name: str) -> float:
    res = halide_result(prog, mod.halide_partition(prog), tile_sizes, GPU)
    t = gpu_time(analyze_optimized(res))
    return t / HALIDE_UNROLL_BONUS.get(name, 1.0)


def polymage_cpu_work(mod, prog, tile_sizes) -> ProgramWork:
    return polymage_work(prog, mod.polymage_partition(prog), tile_sizes, CPU)


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def fmt_speedup(x: float) -> str:
    return f"{x:.2f}x"


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)))
    print()


def save_results(name: str, data) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
    return path


def save_perf_snapshot(name: str, gauges: Dict[str, float], **meta) -> str:
    """Write a ``repro-metrics/1`` snapshot of benchmark timings.

    ``gauges`` maps metric names to seconds (or other numeric readings);
    the result is what ``benchmarks/check_regression.py`` and ``repro
    stats diff`` consume.  The snapshot lands in
    ``benchmarks/results/<name>.json``.
    """
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    for metric, value in gauges.items():
        reg.set_gauge(metric, value)
    reg.meta.update(meta)
    return save_results(name, reg.snapshot())
