"""Ablation — the m > n parallelism guard (Section III-C).

Algorithm 1 refuses to fuse an intermediate space with fewer parallel
dimensions (n) than the target requires of the live-out space (m): CPU
protects one dimension, GPU two.  We build a pipeline whose intermediate
reduction stage has only 1 parallel dimension and check that the CPU
target fuses it while the GPU target leaves it out — and that disabling
the guard (m forced to 0) would fuse everywhere at the cost of grid
parallelism.
"""

from common import print_table, save_results
from repro import CompileOptions
from repro.core import CPU, GPU, TargetSpec, optimize
from repro.ir import ProgramBuilder
from repro.scheduler import MINFUSE


def build_rowsum_pipeline(n: int = 64):
    """rows[i] = sum_j A[i, j]  (1 parallel dim), then B[i, j] = A[i,j]*rows[i]."""
    b = ProgramBuilder("rowsum", params={})
    A = b.tensor("A", (n, n))
    rows = b.tensor("rows", (n,))
    B = b.tensor("B", (n, n))
    i, j = b.iters("i", "j")
    box = f"0 <= i < {n} and 0 <= j < {n}"
    b.assign("Sr0", (i,), f"0 <= i < {n}", rows[i], 0)
    b.reduce("Sr1", (i, j), box, rows[i], A[i, j])
    b.assign("Sout", (i, j), box, B[i, j], A[i, j] * rows[i])
    b.set_liveout("B")
    return b.build()


def compute_ablation():
    prog = build_rowsum_pipeline()
    results = {}
    for label, target in (
        ("cpu (m=1)", CPU),
        ("gpu (m=2)", GPU),
        ("no guard (m=0)", TargetSpec("noguard", m_cap=0, min_m=1)),
    ):
        # minfuse start-up keeps the computation spaces separated so the
        # guard decision is visible (smartfuse would pre-merge this chain).
        res = optimize(prog, CompileOptions(target=target, tile_sizes=(8, 64), startup=MINFUSE))
        fused = res.fusion_summary()
        results[label] = {
            "clusters": fused,
            "n_clusters": len(fused),
        }
    rows = [
        [label, r["n_clusters"], "; ".join("+".join(c) for c in r["clusters"])]
        for label, r in results.items()
    ]
    return rows, results


def test_ablation_parallelism_guard(benchmark):
    rows, raw = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation: the m > n fusion guard",
        ["target", "#clusters", "fusion result"],
        rows,
    )
    save_results("ablation_parallelism", {k: v["clusters"] for k, v in raw.items()})

    # CPU (m=1): the 1-D-parallel reduction may fuse -> single cluster.
    assert raw["cpu (m=1)"]["n_clusters"] == 1
    # GPU (m=2): the reduction stages have n=1 < m=2 parallel dims and are
    # kept out of the live-out space's tiles.
    assert raw["gpu (m=2)"]["n_clusters"] > 1
    # Dropping the guard merges everything regardless of parallelism.
    assert raw["no guard (m=0)"]["n_clusters"] == 1


if __name__ == "__main__":
    rows, _ = compute_ablation()
    print_table("m>n guard", ["target", "#clusters", "result"], rows)
