"""Ablation — overlap tightness (Section VI-A, Camera Pipeline discussion).

The paper credits part of its Camera Pipeline win to *tighter* overlapped
tile shapes: PolyMage applies one group-wide over-approximated halo, while
post-tiling fusion derives each stage's exact upwards-exposed footprint.
This ablation runs the same fusion clusters under both overlap policies
and reports the recomputation and execution-time gap.
"""

from common import cpu_time, image_program, print_table, save_results
from repro import CompileOptions
from repro.core import optimize
from repro.machine import analyze_optimized

THREADS = 32
PIPELINES = ("camera_pipeline", "harris", "local_laplacian", "unsharp_mask")


def compute_ablation():
    rows = []
    raw = {}
    for name in PIPELINES:
        mod, prog = image_program(name)
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=mod.TILE_SIZES))
        exact = analyze_optimized(result, overlap="exact")
        loose = analyze_optimized(result, overlap="box_total")
        t_exact = cpu_time(exact, THREADS)
        t_loose = cpu_time(loose, THREADS)
        raw[name] = {
            "recompute_exact_ops": exact.total_recompute(),
            "recompute_box_total_ops": loose.total_recompute(),
            "time_exact_ms": t_exact * 1e3,
            "time_box_total_ms": t_loose * 1e3,
            "slowdown_from_loose_overlap": t_loose / t_exact,
        }
        rows.append(
            [
                name,
                f"{exact.total_recompute():.3g}",
                f"{loose.total_recompute():.3g}",
                f"{t_loose / t_exact:.2f}x",
            ]
        )
    return rows, raw


def test_ablation_overlap(benchmark):
    rows, raw = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation: exact vs. group-wide (PolyMage-style) overlapped tiles",
        ["benchmark", "recompute (exact)", "recompute (box)", "slowdown"],
        rows,
    )
    save_results("ablation_overlap", raw)

    for name, r in raw.items():
        assert (
            r["recompute_box_total_ops"] >= r["recompute_exact_ops"] - 1e-6
        ), name
    # The deep stencil pipelines must show a real penalty.
    assert raw["camera_pipeline"]["slowdown_from_loose_overlap"] >= 1.0


if __name__ == "__main__":
    rows, _ = compute_ablation()
    print_table("Overlap ablation", ["benchmark", "exact", "box", "slowdown"], rows)
