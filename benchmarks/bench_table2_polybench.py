"""Table II — PolyBench kernels on CPU (2mm, gemver, covariance).

Execution time for sequential, icc (vectorised sequential), PPCG's
minfuse/smartfuse/maxfuse, Pluto's hybridfuse, and our work, at 1/8/32
threads with the 32x32 default tile sizes.  Shape expectations:

* 2mm: all fusion heuristics roughly equal (parallelism preserved
  everywhere); hybridfuse best (inner-level fusion vectorises);
* gemver/covariance: maxfuse collapses (lost parallelism), ours matches
  smartfuse's best time while fusing more;
* hybridfuse fails on covariance (the published segfault).
"""

from common import cpu_time, fmt_ms, naive_work, print_table, save_results
from repro import CompileOptions
from repro.core import optimize
from repro.machine import analyze_optimized, analyze_scheduled
from repro.machine.cpu import CPUSpec, DEFAULT_CPU, program_time
from repro.pipelines import polybench
from repro.scheduler import (
    HYBRIDFUSE,
    MAXFUSE,
    MINFUSE,
    SMARTFUSE,
    SchedulerError,
    schedule_program,
)

THREADS = (1, 8, 32)
TILES = (32, 32)
N = 1024

#: Modeled benefit of hybridfuse's inner-level fusion: the fused innermost
#: loops keep values in registers across the two matmuls, improving the
#: effective vector throughput (Section VI-A attributes hybridfuse's 2mm
#: win to icc vectorisation of the fused innermost level).
HYBRID_INNER_BONUS = 1.5


def compute_table2():
    rows = []
    raw = {}
    for kernel, builder in polybench.BUILDERS.items():
        prog = builder(N)
        per_version = {}

        seq = naive_work(prog)
        per_version["sequential"] = [program_time(seq, 1)] * len(THREADS)

        icc_work = analyze_scheduled(schedule_program(prog, MINFUSE), None)
        t_icc = program_time(icc_work, 1)
        per_version["icc"] = [t_icc] * len(THREADS)

        for heuristic in (MINFUSE, SMARTFUSE, MAXFUSE):
            work = analyze_scheduled(schedule_program(prog, heuristic), TILES)
            per_version[heuristic] = [cpu_time(work, t) for t in THREADS]

        try:
            hwork = analyze_scheduled(schedule_program(prog, HYBRIDFUSE), TILES)
            per_version[HYBRIDFUSE] = [
                cpu_time(hwork, t) / HYBRID_INNER_BONUS for t in THREADS
            ]
        except SchedulerError:
            per_version[HYBRIDFUSE] = None  # the published segfault

        ours = optimize(prog, CompileOptions(target="cpu", tile_sizes=TILES))
        owork = analyze_optimized(ours)
        per_version["ours"] = [cpu_time(owork, t) for t in THREADS]

        raw[kernel] = {
            v: (None if times is None else [t * 1e3 for t in times])
            for v, times in per_version.items()
        }
        for version, times in per_version.items():
            if times is None:
                rows.append([kernel, version] + ["x"] * len(THREADS))
            else:
                rows.append([kernel, version] + [fmt_ms(t) for t in times])
    return rows, raw


def test_table2_polybench(benchmark):
    rows, raw = benchmark.pedantic(compute_table2, rounds=1, iterations=1)
    print_table(
        f"Table II: PolyBench CPU execution time (ms), N={N}",
        ["kernel", "version"] + [f"{t} thr" for t in THREADS],
        rows,
    )
    save_results("table2_polybench", raw)

    # hybridfuse segfaults on covariance, works elsewhere
    assert raw["covariance"]["hybridfuse"] is None
    assert raw["2mm"]["hybridfuse"] is not None
    # hybridfuse is the best 2mm version at 32 threads
    best_2mm_32 = min(
        times[-1] for v, times in raw["2mm"].items() if times is not None
    )
    assert raw["2mm"]["hybridfuse"][-1] == best_2mm_32
    for kernel in ("gemver", "covariance"):
        # maxfuse suffers badly from lost parallelism at 32 threads
        assert raw[kernel]["maxfuse"][-1] > 2 * raw[kernel]["ours"][-1], kernel
        # ours at least matches smartfuse
        assert raw[kernel]["ours"][-1] <= raw[kernel]["smartfuse"][-1] * 1.05, kernel


if __name__ == "__main__":
    rows, _ = compute_table2()
    print_table("Table II", ["kernel", "version", "1", "8", "32"], rows)
