"""No-listener overhead of the observability layer.

The pipeline is instrumented at every pass boundary and in the presburger
hot loops, so the disabled path (no ``collect()`` active) must be
near-free.  Measuring that directly with A/B wall-clock is hopeless — the
effect is inside timer noise — so this benchmark bounds it analytically:

1. compile a workload cold and time it (``T``);
2. compile it again under a counting collector to learn exactly how many
   ``span()`` / ``count()`` / ``observe()`` calls that compile performs;
3. microbenchmark the *no-op* cost of each call (no collector active);
4. assert ``(n_span * c_span + n_count * c_count + n_observe * c_observe)
   / T < 2%``.

Saves ``benchmarks/results/obs_overhead.json``; exits non-zero when the
bound is violated.
"""

import argparse
import gc
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from common import save_results
from repro import CompileOptions
from repro.core import optimize
from repro.presburger import memo
from repro.service import instrument

#: The budget the instrumentation must stay under on a cold compile.
OVERHEAD_BUDGET = 0.02


class CallCounter(instrument.CompileReport):
    """A report that counts instrumentation *calls* instead of contents."""

    def __init__(self):
        super().__init__()
        self.n_spans = 0
        self.n_counts = 0
        self.n_observes = 0

    def add_span(self, name, seconds):
        self.n_spans += 1
        super().add_span(name, seconds)

    def add_count(self, name, n=1):
        self.n_counts += 1
        super().add_count(name, n)

    def observe(self, name, value, buckets=()):
        self.n_observes += 1


def noop_cost(fn, iters):
    """Per-call seconds of ``fn`` when no collector is listening."""
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - t0) / iters


def _span_noop():
    with instrument.span("bench_overhead"):
        pass


def _count_noop():
    instrument.count("bench_overhead")


def _observe_noop():
    instrument.observe("bench_overhead", 3)


def run_bench(workload: str, size: int, iters: int):
    from repro.api import default_tile_sizes, get_workload

    assert not instrument.active(), "benchmark needs the disabled path"
    prog = get_workload(workload, size)
    tiles = default_tile_sizes(workload)

    memo.clear_all()
    t0 = time.perf_counter()
    optimize(prog, CompileOptions(tile_sizes=tiles))
    compile_seconds = time.perf_counter() - t0

    memo.clear_all()
    counter = CallCounter()
    with instrument.collect(report=counter):
        optimize(prog, CompileOptions(tile_sizes=tiles))

    c_span = noop_cost(_span_noop, iters)
    c_count = noop_cost(_count_noop, iters)
    c_observe = noop_cost(_observe_noop, iters)

    est = (
        counter.n_spans * c_span
        + counter.n_counts * c_count
        + counter.n_observes * c_observe
    )
    ratio = est / compile_seconds
    return {
        "workload": workload,
        "size": size,
        "compile_seconds": compile_seconds,
        "span_calls": counter.n_spans,
        "count_calls": counter.n_counts,
        "observe_calls": counter.n_observes,
        "span_noop_ns": c_span * 1e9,
        "count_noop_ns": c_count * 1e9,
        "observe_noop_ns": c_observe * 1e9,
        "estimated_overhead_seconds": est,
        "overhead_ratio": ratio,
        "budget": OVERHEAD_BUDGET,
    }


def run_serve_bench(workload: str, size: int, requests: int, repeats: int):
    """Tracing overhead on a warm-compile loop against an embedded daemon.

    Three request modes over the same compile: untraced, traced
    (sampled — the daemon opens a tracing collector and ships the span
    payload back) and trace-flagged-but-unsampled (must ride the
    null-span fast path).  The result cache is off, so the daemon is
    *warm* (imports, presburger memo) but every request pays real
    compile work, which is what the 2% budget is relative to.

    The same lesson as the disabled-path bound above applies: A/B
    wall-clock on a shared machine cannot resolve a ~1% effect — drift
    between interleaved requests alone swings ±5%.  The end-to-end loop
    therefore provides the *denominator* (median plain-request latency)
    and a smoke check that every mode round-trips, while the *numerator*
    is the traced path's additive work measured directly where it is
    deterministic:

    * ``report_to_wire`` on the request's actual traced span report,
    * JSON-encoding the span payload into the response,
    * JSON-decoding it again client-side,
    * recording overhead inside the compile (spans/frame counters),
      bounded by the per-call no-op costs times the observed call volume.

    The unsampled mode's additive work is a context mint + wire field +
    one validation, microbenchmarked the same way (it has no payload and
    no collector).
    """
    import json
    import tempfile

    from repro.obs import distributed
    from repro.obs.distributed import validate_trace_field
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread

    with tempfile.TemporaryDirectory(prefix="bench-obs-serve-") as tmp:
        config = ServeConfig(
            socket_path=os.path.join(tmp, "serve.sock"),
            cache=None,
            trace_sample=1.0,
        )
        with ServerThread(config):
            with ServeClient(socket_path=config.socket_path) as client:
                # First compiles warm the daemon (imports, presburger
                # memo); the timed loop then does the same real work
                # every request.
                client.compile(workload, size=size)
                client.compile(workload, size=size)

                modes = (
                    ("plain", lambda: None),
                    ("sampled", lambda: client.new_trace(sampled=True)),
                    ("unsampled", lambda: client.new_trace(sampled=False)),
                )
                times = {name: [] for name, _ in modes}
                payload = None
                for round_no in range(repeats * requests):
                    gc.collect()
                    for i in range(len(modes)):
                        name, make_trace = modes[(round_no + i) % len(modes)]
                        t0 = time.perf_counter()
                        out = client.compile(
                            workload, size=size, trace=make_trace()
                        )
                        times[name].append(time.perf_counter() - t0)
                        if name == "sampled":
                            payload = out.get("trace") or payload

    if payload is None:
        raise RuntimeError("sampled requests returned no span payload")
    plain = _median(times["plain"])

    # Deterministic additive cost of the sampled path, against the real
    # payload this workload produces.
    events = distributed.wire_to_events(payload)
    report = instrument.CompileReport(record_events=True)
    for e in events:
        report.add_event(e)
        report.add_span(e.name, e.duration)
    ctx = distributed.TraceContext(
        trace_id=str(payload.get("trace_id") or "0" * 32),
        span_id="1" * 16,
        sampled=True,
    )
    t_wire = _best_of(
        lambda: distributed.report_to_wire(report, "daemon", ctx), 50
    )
    encoded = json.dumps({"ok": True, "trace": payload})
    t_encode = _best_of(lambda: json.dumps({"ok": True, "trace": payload}), 50)
    t_decode = _best_of(lambda: json.loads(encoded), 50)
    # In-compile recording: per-call no-op costs times this payload's
    # span volume (each span is one frame push + event append), plus the
    # per-span counter attributions it carried.
    n_counter_updates = sum(len(s.get("c", [])) for s in payload["spans"])
    t_record = len(events) * noop_cost(_span_noop, 2000) * 2 + (
        n_counter_updates * noop_cost(_count_noop, 2000)
    )
    traced_est = t_wire + t_encode + t_decode + t_record

    # The unsampled path: mint + serialize + validate one context.
    def unsampled_work():
        c = distributed.new_context(sampled=False)
        validate_trace_field(c.to_wire())

    unsampled_est = _best_of(unsampled_work, 200)

    return {
        "workload": workload,
        "size": size,
        "requests": requests,
        "repeats": repeats,
        "plain_seconds": plain,
        "traced_seconds": _median(times["sampled"]),
        "unsampled_seconds": _median(times["unsampled"]),
        "wire_spans": len(events),
        "payload_bytes": len(encoded),
        "traced_overhead_seconds": traced_est,
        "traced_overhead_ratio": traced_est / plain,
        "unsampled_overhead_seconds": unsampled_est,
        "unsampled_overhead_ratio": unsampled_est / plain,
        "budget": OVERHEAD_BUDGET,
    }


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _best_of(fn, iters):
    """Tightest per-call seconds over a few batched repetitions."""
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default=None)
    ap.add_argument("--size", type=int, default=None)
    ap.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller image, fewer microbenchmark iterations",
    )
    ap.add_argument(
        "--serve",
        action="store_true",
        help="measure end-to-end tracing overhead on a warm-compile loop "
        "against an embedded compile daemon",
    )
    ap.add_argument("--requests", type=int, default=None,
                    help="--serve: requests per timed loop")
    ap.add_argument("--repeats", type=int, default=None,
                    help="--serve: loops per mode (best-of)")
    args = ap.parse_args(argv)
    if args.serve:
        raw = run_serve_bench(
            args.workload or "local_laplacian",
            args.size or 128,
            args.requests or (5 if args.quick else 10),
            args.repeats or (3 if args.quick else 5),
        )
        save_results("obs_overhead_serve", raw)
        print(
            f"{raw['workload']} (size {raw['size']}): "
            f"{raw['requests'] * raw['repeats']} interleaved warm rounds; "
            f"median request plain {raw['plain_seconds'] * 1e3:.1f} ms, "
            f"traced {raw['traced_seconds'] * 1e3:.1f} ms, "
            f"unsampled {raw['unsampled_seconds'] * 1e3:.1f} ms"
        )
        print(
            f"traced additive cost {raw['traced_overhead_seconds'] * 1e3:.2f} ms "
            f"({raw['traced_overhead_ratio'] * 100:.2f}% of a warm request; "
            f"{raw['wire_spans']} wire spans, {raw['payload_bytes']} payload "
            f"bytes); unsampled {raw['unsampled_overhead_seconds'] * 1e6:.1f} us "
            f"({raw['unsampled_overhead_ratio'] * 100:.4f}%)"
        )
        failed = False
        if raw["traced_overhead_ratio"] >= OVERHEAD_BUDGET:
            print(
                f"FAIL: traced daemon overhead "
                f"{raw['traced_overhead_ratio'] * 100:.2f}% >= 2%"
            )
            failed = True
        if raw["unsampled_overhead_ratio"] >= OVERHEAD_BUDGET / 10:
            print(
                f"FAIL: unsampled path not near-free "
                f"({raw['unsampled_overhead_ratio'] * 100:.4f}% >= 0.2%)"
            )
            failed = True
        if failed:
            return 1
        print("ok: traced daemon overhead < 2%, unsampled near zero")
        return 0
    size = args.size or (128 if args.quick else 512)
    iters = 50_000 if args.quick else 500_000

    raw = run_bench(args.workload or "local_laplacian", size, iters)
    save_results("obs_overhead", raw)
    print(
        f"{raw['workload']} (size {size}): cold compile "
        f"{raw['compile_seconds'] * 1e3:.1f} ms; "
        f"{raw['span_calls']} spans, {raw['count_calls']} counts, "
        f"{raw['observe_calls']} observes"
    )
    print(
        f"no-op costs: span {raw['span_noop_ns']:.0f} ns, "
        f"count {raw['count_noop_ns']:.0f} ns, "
        f"observe {raw['observe_noop_ns']:.0f} ns"
    )
    pct = raw["overhead_ratio"] * 100
    if raw["overhead_ratio"] >= OVERHEAD_BUDGET:
        print(f"FAIL: estimated disabled-path overhead {pct:.3f}% >= 2%")
        return 1
    print(f"ok: estimated disabled-path overhead {pct:.3f}% < 2%")
    return 0


def test_obs_overhead():
    raw = run_bench("local_laplacian", 128, 50_000)
    save_results("obs_overhead", raw)
    assert raw["overhead_ratio"] < OVERHEAD_BUDGET, raw


if __name__ == "__main__":
    sys.exit(main())
