"""No-listener overhead of the observability layer.

The pipeline is instrumented at every pass boundary and in the presburger
hot loops, so the disabled path (no ``collect()`` active) must be
near-free.  Measuring that directly with A/B wall-clock is hopeless — the
effect is inside timer noise — so this benchmark bounds it analytically:

1. compile a workload cold and time it (``T``);
2. compile it again under a counting collector to learn exactly how many
   ``span()`` / ``count()`` / ``observe()`` calls that compile performs;
3. microbenchmark the *no-op* cost of each call (no collector active);
4. assert ``(n_span * c_span + n_count * c_count + n_observe * c_observe)
   / T < 2%``.

Saves ``benchmarks/results/obs_overhead.json``; exits non-zero when the
bound is violated.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from common import save_results
from repro import CompileOptions
from repro.core import optimize
from repro.presburger import memo
from repro.service import instrument

#: The budget the instrumentation must stay under on a cold compile.
OVERHEAD_BUDGET = 0.02


class CallCounter(instrument.CompileReport):
    """A report that counts instrumentation *calls* instead of contents."""

    def __init__(self):
        super().__init__()
        self.n_spans = 0
        self.n_counts = 0
        self.n_observes = 0

    def add_span(self, name, seconds):
        self.n_spans += 1
        super().add_span(name, seconds)

    def add_count(self, name, n=1):
        self.n_counts += 1
        super().add_count(name, n)

    def observe(self, name, value, buckets=()):
        self.n_observes += 1


def noop_cost(fn, iters):
    """Per-call seconds of ``fn`` when no collector is listening."""
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - t0) / iters


def _span_noop():
    with instrument.span("bench_overhead"):
        pass


def _count_noop():
    instrument.count("bench_overhead")


def _observe_noop():
    instrument.observe("bench_overhead", 3)


def run_bench(workload: str, size: int, iters: int):
    from repro.api import default_tile_sizes, get_workload

    assert not instrument.active(), "benchmark needs the disabled path"
    prog = get_workload(workload, size)
    tiles = default_tile_sizes(workload)

    memo.clear_all()
    t0 = time.perf_counter()
    optimize(prog, CompileOptions(tile_sizes=tiles))
    compile_seconds = time.perf_counter() - t0

    memo.clear_all()
    counter = CallCounter()
    with instrument.collect(report=counter):
        optimize(prog, CompileOptions(tile_sizes=tiles))

    c_span = noop_cost(_span_noop, iters)
    c_count = noop_cost(_count_noop, iters)
    c_observe = noop_cost(_observe_noop, iters)

    est = (
        counter.n_spans * c_span
        + counter.n_counts * c_count
        + counter.n_observes * c_observe
    )
    ratio = est / compile_seconds
    return {
        "workload": workload,
        "size": size,
        "compile_seconds": compile_seconds,
        "span_calls": counter.n_spans,
        "count_calls": counter.n_counts,
        "observe_calls": counter.n_observes,
        "span_noop_ns": c_span * 1e9,
        "count_noop_ns": c_count * 1e9,
        "observe_noop_ns": c_observe * 1e9,
        "estimated_overhead_seconds": est,
        "overhead_ratio": ratio,
        "budget": OVERHEAD_BUDGET,
    }


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="local_laplacian")
    ap.add_argument("--size", type=int, default=None)
    ap.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller image, fewer microbenchmark iterations",
    )
    args = ap.parse_args(argv)
    size = args.size or (128 if args.quick else 512)
    iters = 50_000 if args.quick else 500_000

    raw = run_bench(args.workload, size, iters)
    save_results("obs_overhead", raw)
    print(
        f"{raw['workload']} (size {size}): cold compile "
        f"{raw['compile_seconds'] * 1e3:.1f} ms; "
        f"{raw['span_calls']} spans, {raw['count_calls']} counts, "
        f"{raw['observe_calls']} observes"
    )
    print(
        f"no-op costs: span {raw['span_noop_ns']:.0f} ns, "
        f"count {raw['count_noop_ns']:.0f} ns, "
        f"observe {raw['observe_noop_ns']:.0f} ns"
    )
    pct = raw["overhead_ratio"] * 100
    if raw["overhead_ratio"] >= OVERHEAD_BUDGET:
        print(f"FAIL: estimated disabled-path overhead {pct:.3f}% >= 2%")
        return 1
    print(f"ok: estimated disabled-path overhead {pct:.3f}% < 2%")
    return 0


def test_obs_overhead():
    raw = run_bench("local_laplacian", 128, 50_000)
    save_results("obs_overhead", raw)
    assert raw["overhead_ratio"] < OVERHEAD_BUDGET, raw


if __name__ == "__main__":
    sys.exit(main())
