"""Compilation-time comparison (Table I's last four columns, Section VI-D).

Measured wall-clock of this implementation's start-up heuristics and of
the full post-tiling-fusion pass, per image pipeline.  The paper's
headline ("maxfuse cannot finish within one day") stems from Pluto's
ILP-based scheduling, which this reproduction replaces with polynomial
algorithms — so the absolute blowups do not recur; what must reproduce is
that *our pass stays fast on every pipeline* (paper: always under 8
minutes) and scales with pipeline depth, with the footprint computation
(not the heuristics) dominating on complex access patterns.
"""

import time

from common import (
    IMAGE_PIPELINES,
    heuristic_cpu_work,
    image_program,
    print_table,
    save_results,
)
from repro import CompileOptions
from repro.core import optimize
from repro.scheduler import MAXFUSE, MINFUSE, SMARTFUSE


def compute_compile_times():
    rows = []
    raw = {}
    for name in sorted(IMAGE_PIPELINES):
        mod, prog = image_program(name)
        ts = mod.TILE_SIZES
        times = {}
        for heuristic in (MINFUSE, SMARTFUSE, MAXFUSE):
            _, t = heuristic_cpu_work(prog, heuristic, ts)
            times[heuristic] = t
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=ts))
        times["ours"] = result.compile_seconds
        raw[name] = times
        rows.append(
            [name, len(prog.statements)]
            + [f"{times[v]:.3f}" for v in (MINFUSE, SMARTFUSE, MAXFUSE, "ours")]
        )
    return rows, raw


def test_compile_time(benchmark):
    rows, raw = benchmark.pedantic(compute_compile_times, rounds=1, iterations=1)
    print_table(
        "Compilation time (s) per pipeline",
        ["benchmark", "stages", "minfuse", "smartfuse", "maxfuse", "ours"],
        rows,
    )
    save_results("compile_time", raw)

    # The paper's bound: our pass terminates quickly on every pipeline.
    for name, times in raw.items():
        assert times["ours"] < 480, name  # well under the paper's 8 minutes
    # Depth scales cost: the 99-stage pipeline is the most expensive.
    assert raw["local_laplacian"]["ours"] == max(r["ours"] for r in raw.values())


if __name__ == "__main__":
    rows, _ = compute_compile_times()
    print_table("Compile time", ["benchmark", "stages", "minfuse", "smartfuse", "maxfuse", "ours"], rows)
