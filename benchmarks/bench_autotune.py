"""Tile-size auto-tuning bench (the provenance of Table I's tile sizes).

Two parts:

* **Parametric sweep** — the headline of the parametric-footprint engine:
  one symbolic footprint per group serves every tile-size candidate, so an
  autotune sweep re-specializes instead of recompiling.  The bench sweeps
  >= 8 candidates per workload with the engine off (``REPRO_PARAMETRIC_FP=0``,
  the per-candidate seed path) and on, asserts the chosen sizes,
  evaluation landscape and generated C are byte-identical, and reports the
  wall-clock speedup (>= 1.5x expected on the stencil pipelines).

* **Table I sanity** — the tuned size is the argmin and degenerate tilings
  lose to it; Table I's published sizes stay near-competitive.

* **Pruned sweep** (``--pruned``) — collect a dataset from the exhaustive
  sweeps, fit the ranking model, rerun with ``search="pruned"`` and assert
  the learned cut reaches the identical ``best_sizes`` with >= 5x fewer
  exact cost-model evaluations.

``--quick`` runs the parity assertions only (2 workloads, no timing
thresholds) — that is what CI's autotune-parity and learned-autotune
jobs execute.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from common import image_program, print_table, save_results
from repro import CompileOptions
from repro.codegen import print_tree
from repro.core import optimize
from repro.presburger import memo
from repro.scheduler import autotune_tile_sizes

PIPELINES = ("unsharp_mask", "harris")
CANDIDATES = (8, 32, 128, 512)

#: Parametric-sweep settings: 5 candidates x 2 dims = 25 combos (>= 8).
SWEEP_WORKLOADS = (
    "unsharp_mask", "harris", "2mm", "3mm",
    "camera_pipeline", "bilateral_grid",
)
SWEEP_CANDIDATES = (4, 8, 16, 32, 128)
SWEEP_SIZE = 256
SWEEP_SPEEDUP = 1.5
SWEEP_MIN_WORKLOADS = 3
ENV = "REPRO_PARAMETRIC_FP"


def _sweep_once(prog, flag: str):
    """One cold autotune sweep plus the best candidate's generated C."""
    os.environ[ENV] = flag
    memo.clear_all()
    t0 = time.perf_counter()
    result = autotune_tile_sizes(prog, options=CompileOptions(target="cpu", mode="serial"), threads=32, candidates=SWEEP_CANDIDATES, dims=2)
    elapsed = time.perf_counter() - t0
    best = optimize(prog, CompileOptions(target="cpu", tile_sizes=result.best_sizes))
    code = print_tree(best.tree, prog, style="openmp")
    return result, code, elapsed


def compute_parametric_sweep(workloads=SWEEP_WORKLOADS, reps: int = 3):
    from repro.api import get_workload

    rows, raw = [], {}
    old = os.environ.get(ENV)
    try:
        for name in workloads:
            prog = get_workload(name, SWEEP_SIZE)
            seed_t = par_t = float("inf")
            for _ in range(reps):
                seed, seed_code, t = _sweep_once(prog, "0")
                seed_t = min(seed_t, t)
                par, par_code, t = _sweep_once(prog, "1")
                par_t = min(par_t, t)
            assert par.best_sizes == seed.best_sizes, (
                f"{name}: parametric best {par.best_sizes} != "
                f"seed best {seed.best_sizes}"
            )
            assert par.evaluations == seed.evaluations, (
                f"{name}: evaluation landscapes diverge"
            )
            assert par_code == seed_code, (
                f"{name}: generated C diverges for {par.best_sizes}"
            )
            speedup = seed_t / par_t
            raw[name] = {
                "candidates": len(seed.evaluations) + len(seed.failures),
                "best_sizes": list(seed.best_sizes),
                "seed_seconds": seed_t,
                "parametric_seconds": par_t,
                "speedup": speedup,
                "parity": True,
            }
            rows.append(
                [
                    name,
                    str(raw[name]["candidates"]),
                    "x".join(map(str, seed.best_sizes)),
                    f"{seed_t:.2f}",
                    f"{par_t:.2f}",
                    f"{speedup:.2f}x",
                ]
            )
    finally:
        if old is None:
            os.environ.pop(ENV, None)
        else:
            os.environ[ENV] = old
        memo.clear_all()
    return rows, raw


#: Required evaluation-count reduction of the pruned search.
PRUNE_FACTOR = 5.0


def compute_pruned_sweep(workloads=SWEEP_WORKLOADS):
    """Collect -> fit -> pruned rerun; asserts parity and >= 5x reduction."""
    import tempfile

    from repro.api import get_workload
    from repro.data import Dataset
    from repro.learn import fit_records, save_model

    rows, raw = [], {}
    with tempfile.TemporaryDirectory() as tmp:
        dataset = Dataset(os.path.join(tmp, "autotune.jsonl"))
        programs, exhaustive = {}, {}
        for name in workloads:
            prog = get_workload(name, SWEEP_SIZE)
            programs[name] = prog
            exhaustive[name] = autotune_tile_sizes(
                prog, threads=32, candidates=SWEEP_CANDIDATES, dims=2,
                collect=dataset,
            )
        model = fit_records(dataset.records())
        model_path = save_model(model, os.path.join(tmp, "ranker.pkl"))
        for name in workloads:
            ex = exhaustive[name]
            pr = autotune_tile_sizes(
                programs[name], threads=32, candidates=SWEEP_CANDIDATES,
                dims=2, search="pruned", model=model_path, collect=False,
            )
            assert pr.search == "pruned", (
                f"{name}: pruned search fell back: {pr.fallback_reason}"
            )
            assert pr.best_sizes == ex.best_sizes, (
                f"{name}: pruned best {pr.best_sizes} != "
                f"exhaustive best {ex.best_sizes}"
            )
            reduction = ex.exact_evaluations / max(pr.exact_evaluations, 1)
            assert reduction >= PRUNE_FACTOR, (
                f"{name}: only {reduction:.1f}x fewer exact evaluations "
                f"({ex.exact_evaluations} -> {pr.exact_evaluations}), "
                f"need >= {PRUNE_FACTOR}x"
            )
            raw[name] = {
                "best_sizes": list(ex.best_sizes),
                "exhaustive_evals": ex.exact_evaluations,
                "pruned_evals": pr.exact_evaluations,
                "pruned_out": pr.pruned_out,
                "reduction": reduction,
                "parity": True,
            }
            rows.append(
                [
                    name,
                    str(ex.exact_evaluations),
                    str(pr.exact_evaluations),
                    "x".join(map(str, pr.best_sizes)),
                    f"{reduction:.1f}x",
                ]
            )
    return rows, raw


def compute_autotune():
    rows = []
    raw = {}
    for name in PIPELINES:
        mod, prog = image_program(name)
        result = autotune_tile_sizes(prog, options=CompileOptions(target="cpu", mode="serial"), threads=32, candidates=CANDIDATES)
        paper_sizes = tuple(mod.TILE_SIZES)
        paper_time = result.evaluations.get(paper_sizes)
        raw[name] = {
            "best_sizes": list(result.best_sizes),
            "best_ms": result.best_time * 1e3,
            "paper_sizes": list(paper_sizes),
            "paper_ms": None if paper_time is None else paper_time * 1e3,
            "evaluations": {
                "x".join(map(str, k)): v * 1e3
                for k, v in result.evaluations.items()
            },
        }
        rows.append(
            [
                name,
                "x".join(map(str, result.best_sizes)),
                f"{result.best_time * 1e3:.3f}",
                "x".join(map(str, paper_sizes)),
                "-" if paper_time is None else f"{paper_time * 1e3:.3f}",
            ]
        )
    return rows, raw


def _check_sweep_speedups(raw) -> int:
    fast = [n for n, r in raw.items() if r["speedup"] >= SWEEP_SPEEDUP]
    print(
        f"\n{len(fast)}/{len(raw)} workloads at >= {SWEEP_SPEEDUP}x "
        f"(need {SWEEP_MIN_WORKLOADS}): {', '.join(fast) or 'none'}"
    )
    return 0 if len(fast) >= SWEEP_MIN_WORKLOADS else 1


def test_autotune(benchmark):
    rows, raw = benchmark.pedantic(compute_autotune, rounds=1, iterations=1)
    print_table(
        "Tile-size auto-tuning vs Table I sizes (CPU model, 32 threads)",
        ["benchmark", "tuned", "tuned ms", "Table I", "Table I ms"],
        rows,
    )
    sweep_rows, sweep_raw = compute_parametric_sweep(
        workloads=("unsharp_mask", "harris"), reps=1
    )
    print_table(
        "Parametric-footprint sweep parity",
        ["benchmark", "combos", "best", "seed s", "parametric s", "speedup"],
        sweep_rows,
    )
    save_results("autotune", {**raw, "parametric_sweep": sweep_raw})

    for name, r in raw.items():
        evals = r["evaluations"]
        best = r["best_ms"]
        # the tuned size is the argmin by construction; sanity: the spread
        # between best and worst tiling is real (tile sizes matter)
        worst = max(evals.values())
        assert worst > best * 1.2, name
        # Table I's size, when in the candidate grid, is near-competitive
        if r["paper_ms"] is not None:
            assert r["paper_ms"] <= worst


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="parity assertions only (2 workloads, no timing threshold)",
    )
    ap.add_argument(
        "--pruned", action="store_true",
        help="learned-pruning sweep: collect, fit, rerun pruned and assert "
        "best-sizes parity with >= 5x fewer exact evaluations",
    )
    args = ap.parse_args(argv)

    if args.pruned:
        workloads = ("unsharp_mask", "harris") if args.quick else SWEEP_WORKLOADS
        rows, raw = compute_pruned_sweep(workloads=workloads)
        print_table(
            "Learned pruning: exhaustive vs pruned exact evaluations",
            ["benchmark", "exhaustive", "pruned", "best", "reduction"],
            rows,
        )
        save_results("autotune_pruned", raw)
        print(
            f"pruned parity: OK (best sizes identical, "
            f">= {PRUNE_FACTOR:.0f}x fewer exact evaluations)"
        )
        return 0

    if args.quick:
        rows, raw = compute_parametric_sweep(
            workloads=("unsharp_mask", "harris"), reps=1
        )
        print_table(
            "Parametric-footprint sweep parity (quick)",
            ["benchmark", "combos", "best", "seed s", "parametric s", "speedup"],
            rows,
        )
        print("parity: OK (sizes, landscape and generated C byte-identical)")
        return 0

    table_rows, table_raw = compute_autotune()
    print_table(
        "Auto-tuning", ["benchmark", "tuned", "ms", "paper", "ms"], table_rows
    )
    sweep_rows, sweep_raw = compute_parametric_sweep()
    print_table(
        "Parametric-footprint sweep: seed per-candidate vs specialized",
        ["benchmark", "combos", "best", "seed s", "parametric s", "speedup"],
        sweep_rows,
    )
    save_results("autotune", {**table_raw, "parametric_sweep": sweep_raw})
    return _check_sweep_speedups(sweep_raw)


if __name__ == "__main__":
    sys.exit(main())
