"""Tile-size auto-tuning bench (the provenance of Table I's tile sizes).

Tunes two representative pipelines against the CPU model and checks the
landscape's sanity: the tuned size is never worse than the Table I size,
and degenerate tilings (maximum tile = no tiling benefit, minimum tile =
halo-dominated) lose to the tuned one.
"""

from common import image_program, print_table, save_results
from repro.scheduler import autotune_tile_sizes

PIPELINES = ("unsharp_mask", "harris")
CANDIDATES = (8, 32, 128, 512)


def compute_autotune():
    rows = []
    raw = {}
    for name in PIPELINES:
        mod, prog = image_program(name)
        result = autotune_tile_sizes(
            prog, target="cpu", threads=32, candidates=CANDIDATES
        )
        paper_sizes = tuple(mod.TILE_SIZES)
        paper_time = result.evaluations.get(paper_sizes)
        raw[name] = {
            "best_sizes": list(result.best_sizes),
            "best_ms": result.best_time * 1e3,
            "paper_sizes": list(paper_sizes),
            "paper_ms": None if paper_time is None else paper_time * 1e3,
            "evaluations": {
                "x".join(map(str, k)): v * 1e3
                for k, v in result.evaluations.items()
            },
        }
        rows.append(
            [
                name,
                "x".join(map(str, result.best_sizes)),
                f"{result.best_time * 1e3:.3f}",
                "x".join(map(str, paper_sizes)),
                "-" if paper_time is None else f"{paper_time * 1e3:.3f}",
            ]
        )
    return rows, raw


def test_autotune(benchmark):
    rows, raw = benchmark.pedantic(compute_autotune, rounds=1, iterations=1)
    print_table(
        "Tile-size auto-tuning vs Table I sizes (CPU model, 32 threads)",
        ["benchmark", "tuned", "tuned ms", "Table I", "Table I ms"],
        rows,
    )
    save_results("autotune", raw)

    for name, r in raw.items():
        evals = r["evaluations"]
        best = r["best_ms"]
        # the tuned size is the argmin by construction; sanity: the spread
        # between best and worst tiling is real (tile sizes matter)
        worst = max(evals.values())
        assert worst > best * 1.2, name
        # Table I's size, when in the candidate grid, is near-competitive
        if r["paper_ms"] is not None:
            assert r["paper_ms"] <= worst


if __name__ == "__main__":
    rows, _ = compute_autotune()
    print_table("Auto-tuning", ["benchmark", "tuned", "ms", "paper", "ms"], rows)
