"""Figure 8 — CPU thread scaling of the PolyMage benchmarks.

For each pipeline and thread count in {1, 4, 16, 32}: speedup over the
naive sequential code for PolyMage-optimized, Halide manual and our work.
Shape expectations: all versions scale with threads; ours is the top
series on every pipeline (ties allowed on Harris).
"""

from common import (
    IMAGE_PIPELINES,
    cpu_time,
    fmt_speedup,
    halide_cpu_work,
    image_program,
    naive_work,
    our_cpu_work,
    polymage_cpu_work,
    print_table,
    save_results,
)

THREAD_COUNTS = (1, 4, 16, 32)


def compute_fig8():
    raw = {}
    rows = []
    for name in sorted(IMAGE_PIPELINES):
        mod, prog = image_program(name)
        ts = mod.TILE_SIZES
        base = cpu_time(naive_work(prog), 1)
        works = {
            "PolyMage": polymage_cpu_work(mod, prog, ts),
            "Halide": halide_cpu_work(mod, prog, ts),
            "ours": our_cpu_work(prog, ts)[0],
        }
        raw[name] = {"naive_1c_s": base}
        for version, work in works.items():
            series = [base / cpu_time(work, t) for t in THREAD_COUNTS]
            raw[name][version] = dict(zip(map(str, THREAD_COUNTS), series))
            rows.append(
                [name, version] + [fmt_speedup(s) for s in series]
            )
    return rows, raw


def test_fig8_scaling(benchmark):
    rows, raw = benchmark.pedantic(compute_fig8, rounds=1, iterations=1)
    print_table(
        "Fig. 8: speedup over naive sequential vs. thread count",
        ["benchmark", "version"] + [f"{t} thr" for t in THREAD_COUNTS],
        rows,
    )
    save_results("fig8_scaling", raw)

    for name, series in raw.items():
        ours = [series["ours"][str(t)] for t in THREAD_COUNTS]
        # monotone scaling
        assert all(b >= a - 1e-9 for a, b in zip(ours, ours[1:])), name
        # ours is the top series at 32 threads; local_laplacian is the
        # one modeled exception (our cost model slightly favours Halide's
        # per-block grouping there; the paper's gap is also small).
        for version in ("PolyMage", "Halide"):
            slack = 0.6 if name == "local_laplacian" else 0.95
            assert ours[-1] >= series[version]["32"] * slack, (name, version)


if __name__ == "__main__":
    rows, _ = compute_fig8()
    print_table("Fig. 8", ["benchmark", "version", "1", "4", "16", "32"], rows)
