"""Table I — PolyMage benchmarks on CPU.

Columns reproduced: stage count, tile size, execution time of the naive
sequential code (1 core), PolyMage (32 cores), Halide's manual schedule
(32 cores), our work (32 cores), and the compilation time of our pass and
of the start-up heuristics.  Shape expectations: ours >= PolyMage and
ours >= Halide on average (paper: +20% / +33%), Harris ties PolyMage and
beats Halide ~2x.
"""

import pytest

from common import (
    BENCH_SIZE,
    IMAGE_PIPELINES,
    cpu_time,
    fmt_ms,
    halide_cpu_work,
    heuristic_cpu_work,
    image_program,
    naive_work,
    our_cpu_work,
    polymage_cpu_work,
    print_table,
    save_results,
)

THREADS = 32


def compute_table1():
    rows = []
    raw = {}
    for name in sorted(IMAGE_PIPELINES):
        mod, prog = image_program(name)
        ts = mod.TILE_SIZES

        t_naive = cpu_time(naive_work(prog), 1)
        w_poly = polymage_cpu_work(mod, prog, ts)
        t_poly = cpu_time(w_poly, THREADS)
        w_halide = halide_cpu_work(mod, prog, ts)
        t_halide = cpu_time(w_halide, THREADS)
        w_ours, compile_s = our_cpu_work(prog, ts)
        t_ours = cpu_time(w_ours, THREADS)

        _, t_min = heuristic_cpu_work(prog, "minfuse", ts)
        _, t_smart = heuristic_cpu_work(prog, "smartfuse", ts)
        _, t_max = heuristic_cpu_work(prog, "maxfuse", ts)

        rows.append(
            [
                name,
                mod.STAGE_COUNT,
                f"{ts[0]}x{ts[1]}",
                fmt_ms(t_naive),
                fmt_ms(t_poly),
                fmt_ms(t_halide),
                fmt_ms(t_ours),
                f"{t_min:.2f}",
                f"{t_smart:.2f}",
                f"{t_max:.2f}",
                f"{compile_s:.2f}",
            ]
        )
        raw[name] = {
            "naive_1c_ms": t_naive * 1e3,
            "polymage_32c_ms": t_poly * 1e3,
            "halide_32c_ms": t_halide * 1e3,
            "ours_32c_ms": t_ours * 1e3,
            "compile_minfuse_s": t_min,
            "compile_smartfuse_s": t_smart,
            "compile_maxfuse_s": t_max,
            "compile_ours_s": compile_s,
            "speedup_vs_polymage": t_poly / t_ours,
            "speedup_vs_halide": t_halide / t_ours,
        }
    return rows, raw


def test_table1_cpu(benchmark):
    rows, raw = benchmark.pedantic(compute_table1, rounds=1, iterations=1)
    print_table(
        f"Table I: PolyMage benchmarks on CPU ({BENCH_SIZE}x{BENCH_SIZE}, modeled 2x16-core Xeon)",
        [
            "benchmark", "stages", "tile",
            "naive(1c) ms", "PolyMage(32c) ms", "Halide(32c) ms", "ours(32c) ms",
            "minfuse s", "smartfuse s", "maxfuse s", "ours s",
        ],
        rows,
    )
    save_results("table1_cpu", raw)

    # Shape assertions from the paper.
    geo_poly = 1.0
    geo_halide = 1.0
    for name, r in raw.items():
        assert r["ours_32c_ms"] < r["naive_1c_ms"], name
        geo_poly *= r["speedup_vs_polymage"]
        geo_halide *= r["speedup_vs_halide"]
    n = len(raw)
    assert geo_poly ** (1 / n) >= 1.0   # >= PolyMage on average
    assert geo_halide ** (1 / n) > 1.05  # clearly beats Halide on average
    # Harris: same inlining as PolyMage (near-tie), ~2x over Halide's
    # manual schedule which misses the inlining
    assert raw["harris"]["speedup_vs_polymage"] == pytest.approx(1.0, rel=0.25)
    assert raw["harris"]["speedup_vs_halide"] > 1.4


if __name__ == "__main__":
    rows, raw = compute_table1()
    print_table("Table I (CPU)", ["benchmark", "stages", "tile", "naive", "PolyMage", "Halide", "ours", "minfuse", "smartfuse", "maxfuse", "ours_s"], rows)
