"""Compilation-service benchmark: cold vs. warm compiles, serial vs.
parallel autotuning, and cross-process memo warm-starts.

The service layer's claim is that a second structurally identical compile
is (nearly) free and that tile-size tuning parallelises across the batch
driver.  This benchmark measures both: per-workload cold compile time
against a warm ``cached_optimize`` hit (memory tier and disk tier), and
autotune wall time through the serial vs. process-pool driver, cold and
with a warm cache.

It also measures the *memo spill* layer: a fresh process whose result
cache is empty but whose presburger memo tables warm-start from the
snapshot a previous process spilled through the disk cache.  Both runs
recompile from scratch — only the memo state differs — and the schedule
trees must hash identically (compiles are byte-deterministic).  Results
land in ``benchmarks/results/compile_cache.json``.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from common import image_program, print_table, save_results
from repro import CompileOptions
from repro.pipelines import conv2d, polybench
from repro.scheduler.autotune import autotune_tile_sizes
from repro.service import CompileCache, cached_optimize

SRC = os.path.join(os.path.dirname(__file__), "..", "src")

TUNE_CANDIDATES = (8, 16, 32, 64)

#: The 15 benchmark workloads of the paper's evaluation, at compile-bench
#: sizes (sizes only set parameter values; the constraint systems the
#: compiler solves are size-independent).
WARM_START_WORKLOADS = [
    ("bilateral_grid", 512),
    ("camera_pipeline", 512),
    ("harris", 512),
    ("local_laplacian", 512),
    ("multiscale_interp", 512),
    ("unsharp_mask", 512),
    ("2mm", 256),
    ("3mm", 256),
    ("atax", 256),
    ("bicg", 256),
    ("covariance", 256),
    ("doitgen", 32),
    ("gemver", 256),
    ("mvt", 256),
    ("conv2d", 128),
]

QUICK_WARM_START_WORKLOADS = [("harris", 512), ("atax", 256), ("conv2d", 128)]

#: Subprocess payload: one ``compile_batch`` in a genuinely fresh process.
#: The result store is cleared first, so the compile always runs; whether
#: the memo tables warm-start depends only on what an earlier process
#: spilled into ``cache_dir``.
_CHILD = """
import hashlib, json, sys, time
from repro.api import CompileOptions, default_tile_sizes, get_workload
from repro.codegen import print_tree
from repro.presburger import memo
from repro.service import CompileCache, CompileRequest, compile_batch

name, size, cache_dir = sys.argv[1], int(sys.argv[2]), sys.argv[3]
prog = get_workload(name, size)
cache = CompileCache(cache_dir=cache_dir)
cache.clear(results=True, memos=False)
request = CompileRequest(prog, "cpu", default_tile_sizes(name))
t0 = time.perf_counter()
(outcome,) = compile_batch([request], options=CompileOptions(mode="serial", cache=cache))
elapsed = time.perf_counter() - t0
assert outcome.ok, outcome.error
stats = memo.stats()
tree = print_tree(outcome.result.tree, prog)
json.dump({
    "seconds": elapsed,
    "warm_hits": sum(v["warm_hits"] for v in stats.values()),
    "tree_sha": hashlib.sha256(tree.encode()).hexdigest(),
}, sys.stdout)
"""


def _compile_in_subprocess(name: str, size: int, cache_dir: str) -> dict:
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, name, str(size), cache_dir],
        capture_output=True,
        env=env,
        timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"{name}: child failed\n{proc.stderr.decode()}")
    return json.loads(proc.stdout)


def measure_warm_start(workloads):
    """Cold vs. memo-warm-started compile, each in its own process."""
    rows, raw = [], {}
    for name, size in workloads:
        with tempfile.TemporaryDirectory() as cache_dir:
            cold = _compile_in_subprocess(name, size, cache_dir)
            warm = _compile_in_subprocess(name, size, cache_dir)
        assert cold["warm_hits"] == 0, (name, cold)
        assert warm["warm_hits"] > 0, (name, warm)  # snapshot actually hit
        assert warm["tree_sha"] == cold["tree_sha"], name  # byte-determinism
        speedup = cold["seconds"] / warm["seconds"] if warm["seconds"] else float("inf")
        raw[name] = {
            "cold_seconds": cold["seconds"],
            "warm_seconds": warm["seconds"],
            "warm_hits": warm["warm_hits"],
            "speedup": speedup,
            "tree_sha": cold["tree_sha"],
        }
        rows.append(
            [
                name,
                f"{cold['seconds'] * 1e3:.1f}",
                f"{warm['seconds'] * 1e3:.1f}",
                warm["warm_hits"],
                f"{speedup:.2f}x",
            ]
        )
    return rows, raw


def bench_workloads():
    _, harris = image_program("harris", 512)
    return [
        ("harris", harris, (32, 256)),
        ("conv2d", conv2d.build({"H": 128, "W": 128, "KH": 3, "KW": 3}), (32, 32)),
        ("atax", polybench.BUILDERS["atax"](256), (32, 32)),
    ]


def measure_cold_warm():
    rows, raw = [], {}
    for name, prog, tiles in bench_workloads():
        with tempfile.TemporaryDirectory() as cache_dir:
            cache = CompileCache(cache_dir=cache_dir)
            t0 = time.perf_counter()
            cached_optimize(prog, options=CompileOptions(target="cpu", tile_sizes=tiles, cache=cache))
            cold = time.perf_counter() - t0

            t0 = time.perf_counter()
            cached_optimize(prog, options=CompileOptions(target="cpu", tile_sizes=tiles, cache=cache))
            warm_memory = time.perf_counter() - t0

            disk_only = CompileCache(cache_dir=cache_dir)
            t0 = time.perf_counter()
            cached_optimize(prog, options=CompileOptions(target="cpu", tile_sizes=tiles, cache=disk_only))
            warm_disk = time.perf_counter() - t0
            assert cache.stats.memory_hits == 1, cache.stats
            assert disk_only.stats.disk_hits == 1, disk_only.stats

        raw[name] = {
            "cold_seconds": cold,
            "warm_memory_seconds": warm_memory,
            "warm_disk_seconds": warm_disk,
            "speedup_memory": cold / warm_memory if warm_memory else float("inf"),
            "speedup_disk": cold / warm_disk if warm_disk else float("inf"),
        }
        rows.append(
            [
                name,
                f"{cold * 1e3:.1f}",
                f"{warm_memory * 1e3:.1f}",
                f"{warm_disk * 1e3:.1f}",
                f"{raw[name]['speedup_memory']:.1f}x",
            ]
        )
    return rows, raw


def measure_autotune():
    prog = conv2d.build({"H": 128, "W": 128, "KH": 3, "KW": 3})

    t0 = time.perf_counter()
    serial = autotune_tile_sizes(prog, candidates=TUNE_CANDIDATES, dims=2)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = autotune_tile_sizes(prog, options=CompileOptions(mode="auto", jobs=4), candidates=TUNE_CANDIDATES, dims=2)
    parallel_s = time.perf_counter() - t0
    assert parallel.best_sizes == serial.best_sizes
    assert parallel.best_time == serial.best_time

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = CompileCache(cache_dir=cache_dir)
        autotune_tile_sizes(prog, options=CompileOptions(cache=cache, mode="serial"), candidates=TUNE_CANDIDATES, dims=2)
        t0 = time.perf_counter()
        warm = autotune_tile_sizes(prog, options=CompileOptions(cache=cache, mode="serial"), candidates=TUNE_CANDIDATES, dims=2)
        warm_s = time.perf_counter() - t0
        assert warm.best_sizes == serial.best_sizes

    raw = {
        "workload": "conv2d-128",
        "candidates": len(serial.evaluations) + len(serial.failures),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "warm_cache_seconds": warm_s,
        "parallel_speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "warm_speedup": serial_s / warm_s if warm_s else float("inf"),
        "best_sizes": list(serial.best_sizes),
    }
    rows = [
        [
            raw["workload"],
            raw["candidates"],
            f"{serial_s:.2f}",
            f"{parallel_s:.2f}",
            f"{warm_s:.2f}",
            f"{raw['parallel_speedup']:.1f}x",
            f"{raw['warm_speedup']:.1f}x",
        ]
    ]
    return rows, raw


def run(quick: bool = False):
    cold_rows, cold_raw = measure_cold_warm()
    print_table(
        "Cold vs. warm compile time (ms)",
        ["benchmark", "cold", "warm (mem)", "warm (disk)", "speedup"],
        cold_rows,
    )
    tune_rows, tune_raw = measure_autotune()
    print_table(
        "Autotune wall time (s): serial vs. parallel driver",
        ["workload", "tilings", "serial", "parallel", "warm cache",
         "par speedup", "warm speedup"],
        tune_rows,
    )
    workloads = QUICK_WARM_START_WORKLOADS if quick else WARM_START_WORKLOADS
    warm_rows, warm_raw = measure_warm_start(workloads)
    print_table(
        "Cross-process memo warm-start (compile_batch, fresh process, ms)",
        ["benchmark", "cold", "warm-started", "warm hits", "speedup"],
        warm_rows,
    )
    raw = {"cold_warm": cold_raw, "autotune": tune_raw, "warm_start": warm_raw}
    path = save_results("compile_cache", raw)
    print(f"saved {path}")
    return raw


def _check(raw) -> int:
    """The smoke assertions CI runs; returns a shell exit code."""
    total_cold = sum(r["cold_seconds"] for r in raw["warm_start"].values())
    total_warm = sum(r["warm_seconds"] for r in raw["warm_start"].values())
    no_warm_hits = [n for n, r in raw["warm_start"].items() if not r["warm_hits"]]
    if no_warm_hits:
        print(f"FAIL: no memo warm hits for {no_warm_hits}")
        return 1
    if total_warm >= total_cold:
        print(
            f"FAIL: warm-started total {total_warm:.3f}s is not faster "
            f"than cold total {total_cold:.3f}s"
        )
        return 1
    print(
        f"ok: warm-started total {total_warm:.3f}s vs cold {total_cold:.3f}s "
        f"({total_cold / total_warm:.2f}x)"
    )
    return 0


def test_compile_cache(benchmark):
    raw = benchmark.pedantic(lambda: run(quick=True), rounds=1, iterations=1)
    for name, r in raw["cold_warm"].items():
        # Warm hits must beat recompiling — by a lot.
        assert r["speedup_memory"] > 2, (name, r)
        assert r["speedup_disk"] > 2, (name, r)
    assert raw["autotune"]["warm_speedup"] > 1
    for name, r in raw["warm_start"].items():
        assert r["warm_hits"] > 0, (name, r)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: warm-start measurement on three workloads only",
    )
    args = ap.parse_args(argv)
    return _check(run(quick=args.quick))


if __name__ == "__main__":
    sys.exit(main())
