"""Compilation-service benchmark: cold vs. warm compiles, serial vs.
parallel autotuning.

The service layer's claim is that a second structurally identical compile
is (nearly) free and that tile-size tuning parallelises across the batch
driver.  This benchmark measures both: per-workload cold compile time
against a warm ``cached_optimize`` hit (memory tier and disk tier), and
autotune wall time through the serial vs. process-pool driver, cold and
with a warm cache.  Results land in ``benchmarks/results/compile_cache.json``.
"""

import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from common import image_program, print_table, save_results
from repro.pipelines import conv2d, polybench
from repro.scheduler.autotune import autotune_tile_sizes
from repro.service import CompileCache, cached_optimize

TUNE_CANDIDATES = (8, 16, 32, 64)


def bench_workloads():
    _, harris = image_program("harris", 512)
    return [
        ("harris", harris, (32, 256)),
        ("conv2d", conv2d.build({"H": 128, "W": 128, "KH": 3, "KW": 3}), (32, 32)),
        ("atax", polybench.BUILDERS["atax"](256), (32, 32)),
    ]


def measure_cold_warm():
    rows, raw = [], {}
    for name, prog, tiles in bench_workloads():
        with tempfile.TemporaryDirectory() as cache_dir:
            cache = CompileCache(cache_dir=cache_dir)
            t0 = time.perf_counter()
            cached_optimize(prog, "cpu", tiles, cache=cache)
            cold = time.perf_counter() - t0

            t0 = time.perf_counter()
            cached_optimize(prog, "cpu", tiles, cache=cache)
            warm_memory = time.perf_counter() - t0

            disk_only = CompileCache(cache_dir=cache_dir)
            t0 = time.perf_counter()
            cached_optimize(prog, "cpu", tiles, cache=disk_only)
            warm_disk = time.perf_counter() - t0
            assert cache.stats.memory_hits == 1, cache.stats
            assert disk_only.stats.disk_hits == 1, disk_only.stats

        raw[name] = {
            "cold_seconds": cold,
            "warm_memory_seconds": warm_memory,
            "warm_disk_seconds": warm_disk,
            "speedup_memory": cold / warm_memory if warm_memory else float("inf"),
            "speedup_disk": cold / warm_disk if warm_disk else float("inf"),
        }
        rows.append(
            [
                name,
                f"{cold * 1e3:.1f}",
                f"{warm_memory * 1e3:.1f}",
                f"{warm_disk * 1e3:.1f}",
                f"{raw[name]['speedup_memory']:.1f}x",
            ]
        )
    return rows, raw


def measure_autotune():
    prog = conv2d.build({"H": 128, "W": 128, "KH": 3, "KW": 3})

    t0 = time.perf_counter()
    serial = autotune_tile_sizes(prog, candidates=TUNE_CANDIDATES, dims=2)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = autotune_tile_sizes(
        prog, candidates=TUNE_CANDIDATES, dims=2, mode="auto", jobs=4
    )
    parallel_s = time.perf_counter() - t0
    assert parallel.best_sizes == serial.best_sizes
    assert parallel.best_time == serial.best_time

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = CompileCache(cache_dir=cache_dir)
        autotune_tile_sizes(prog, candidates=TUNE_CANDIDATES, dims=2, cache=cache)
        t0 = time.perf_counter()
        warm = autotune_tile_sizes(
            prog, candidates=TUNE_CANDIDATES, dims=2, cache=cache
        )
        warm_s = time.perf_counter() - t0
        assert warm.best_sizes == serial.best_sizes

    raw = {
        "workload": "conv2d-128",
        "candidates": len(serial.evaluations) + len(serial.failures),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "warm_cache_seconds": warm_s,
        "parallel_speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "warm_speedup": serial_s / warm_s if warm_s else float("inf"),
        "best_sizes": list(serial.best_sizes),
    }
    rows = [
        [
            raw["workload"],
            raw["candidates"],
            f"{serial_s:.2f}",
            f"{parallel_s:.2f}",
            f"{warm_s:.2f}",
            f"{raw['parallel_speedup']:.1f}x",
            f"{raw['warm_speedup']:.1f}x",
        ]
    ]
    return rows, raw


def run():
    cold_rows, cold_raw = measure_cold_warm()
    print_table(
        "Cold vs. warm compile time (ms)",
        ["benchmark", "cold", "warm (mem)", "warm (disk)", "speedup"],
        cold_rows,
    )
    tune_rows, tune_raw = measure_autotune()
    print_table(
        "Autotune wall time (s): serial vs. parallel driver",
        ["workload", "tilings", "serial", "parallel", "warm cache",
         "par speedup", "warm speedup"],
        tune_rows,
    )
    raw = {"cold_warm": cold_raw, "autotune": tune_raw}
    path = save_results("compile_cache", raw)
    print(f"saved {path}")
    return raw


def test_compile_cache(benchmark):
    raw = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, r in raw["cold_warm"].items():
        # Warm hits must beat recompiling — by a lot.
        assert r["speedup_memory"] > 2, (name, r)
        assert r["speedup_disk"] > 2, (name, r)
    assert raw["autotune"]["warm_speedup"] > 1


if __name__ == "__main__":
    run()
