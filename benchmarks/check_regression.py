"""Perf-regression gate: compare two ``repro-metrics/1`` snapshots.

Benchmarks write their timings as gauge metrics into
``benchmarks/results/perf_current.json`` (see ``save_perf_snapshot`` in
``common.py``); a blessed run is committed as
``benchmarks/results/perf_baseline.json``.  This script compares the two
and fails (exit 1) when any timing gauge regressed beyond its tolerance::

    python benchmarks/check_regression.py                    # default paths
    python benchmarks/check_regression.py --tolerance 1.5
    python benchmarks/check_regression.py --report-only      # never fail
    python benchmarks/check_regression.py \
        --metric-tolerance presburger.cold.apply_range=2.0

Rules:

* only gauges are compared (counters count events, not time);
* a gauge present in one snapshot only is reported but never fails the
  gate (benchmarks evolve);
* baselines below ``--min-seconds`` are noise: timer jitter at the
  sub-millisecond scale produces huge ratios that mean nothing;
* ``--tolerance`` is a ratio — 1.5 means "fail when current > 1.5x
  baseline"; per-metric overrides win over the global value.

Exit status: 0 ok (or ``--report-only``), 1 regression, 2 usage or
snapshot-format error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import validate_metrics_snapshot

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
DEFAULT_BASELINE = os.path.join(RESULTS_DIR, "perf_baseline.json")
DEFAULT_CURRENT = os.path.join(RESULTS_DIR, "perf_current.json")


def load_snapshot(path: str):
    """Parse and validate one snapshot; raises ValueError with a message."""
    try:
        with open(path) as f:
            snap = json.load(f)
    except OSError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not JSON: {exc}") from exc
    errors = validate_metrics_snapshot(snap)
    if errors:
        raise ValueError("; ".join(f"{path}: {e}" for e in errors))
    return snap


def parse_overrides(pairs):
    """``name=ratio`` strings to a dict; raises ValueError on bad input."""
    out = {}
    for pair in pairs or ():
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ValueError(f"bad --metric-tolerance {pair!r}; want name=ratio")
        try:
            ratio = float(value)
        except ValueError as exc:
            raise ValueError(f"bad ratio in {pair!r}") from exc
        if ratio <= 0:
            raise ValueError(f"tolerance must be positive in {pair!r}")
        out[name] = ratio
    return out


def compare(
    baseline,
    current,
    tolerance: float = 1.5,
    min_seconds: float = 0.001,
    overrides=None,
):
    """Compare two snapshots' gauges.

    Returns ``(regressions, report_lines)`` where ``regressions`` lists
    the metric names that exceeded their tolerance.
    """
    overrides = overrides or {}
    base_g = baseline.get("gauges", {})
    cur_g = current.get("gauges", {})
    regressions = []
    lines = []
    for name in sorted(set(base_g) | set(cur_g)):
        b, c = base_g.get(name), cur_g.get(name)
        if b is None:
            lines.append(f"  new       {name}: {c:.6f}")
            continue
        if c is None:
            lines.append(f"  removed   {name}: was {b:.6f}")
            continue
        limit = overrides.get(name, tolerance)
        if b < min_seconds:
            lines.append(
                f"  noise     {name}: {b:.6f} -> {c:.6f} "
                f"(baseline under {min_seconds}s floor)"
            )
            continue
        ratio = c / b if b > 0 else float("inf")
        if ratio > limit:
            regressions.append(name)
            lines.append(
                f"  REGRESSED {name}: {b:.6f} -> {c:.6f} "
                f"({ratio:.2f}x > {limit:.2f}x allowed)"
            )
        else:
            lines.append(f"  ok        {name}: {b:.6f} -> {c:.6f} ({ratio:.2f}x)")
    return regressions, lines


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="Fail when benchmark gauges regress against the baseline."
    )
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--current", default=DEFAULT_CURRENT)
    ap.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="global allowed current/baseline ratio (default 1.5)",
    )
    ap.add_argument(
        "--min-seconds",
        type=float,
        default=0.001,
        help="ignore gauges whose baseline is below this noise floor",
    )
    ap.add_argument(
        "--metric-tolerance",
        action="append",
        metavar="NAME=RATIO",
        help="per-metric tolerance override (repeatable)",
    )
    ap.add_argument(
        "--report-only",
        action="store_true",
        help="print the comparison but always exit 0",
    )
    args = ap.parse_args(argv)
    if args.tolerance <= 0:
        print("--tolerance must be positive", file=sys.stderr)
        return 2

    try:
        overrides = parse_overrides(args.metric_tolerance)
        baseline = load_snapshot(args.baseline)
        current = load_snapshot(args.current)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    regressions, lines = compare(
        baseline,
        current,
        tolerance=args.tolerance,
        min_seconds=args.min_seconds,
        overrides=overrides,
    )
    print(f"baseline: {args.baseline}")
    print(f"current:  {args.current}")
    for line in lines:
        print(line)
    if regressions:
        print(
            f"{len(regressions)} regression(s): {', '.join(regressions)}"
            + (" [report-only]" if args.report_only else "")
        )
        return 0 if args.report_only else 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
