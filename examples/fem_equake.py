"""Fusion without tiling: the equake finite-element kernel (Section VI-A).

equake's pipeline — banded SpMV (init / reduce / gather) followed by
elementary vector updates — is only tilable along its outermost loop, and
the paper applies *no* tiling at all: Algorithm 1 then degenerates into a
pure post-tiling *fusion* pass (unit tiles over the protected parallel
dimension), automatically finding the grouping PPCG's maxfuse needed a
manual preprocessing step for.

Run:  python examples/fem_equake.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import CompileOptions
from repro.baselines import scheduled_from_partition
from repro.codegen import execute_naive, make_store, run_program
from repro.core import optimize
from repro.machine import analyze_optimized, analyze_scheduled, cpu_time
from repro.pipelines import equake


def main():
    prog = equake.build(n=256)
    print(f"{prog.name}: {len(prog.statements)} statements, banded SpMV width {equake.BAND}")

    result = optimize(prog, CompileOptions(target="cpu", tile_sizes=None))
    print(f"\nfusion found by the pass: {result.fusion_summary()}")
    print("(matches/extends the maxfuse grouping the paper reports, with no")
    print(" manual while-loop permutation required)")

    print("\npredicted times at 32 threads (modeled Xeon), n = 40000:")
    big = equake.build("train")
    res_big = optimize(big, CompileOptions(target="cpu", tile_sizes=None))
    t_ours = cpu_time(analyze_optimized(res_big), 32)
    print(f"  {'ours':10s} {t_ours * 1e3:8.3f} ms")
    for heuristic, partition in equake.PARTITIONS.items():
        sched = scheduled_from_partition(big, partition)
        t = cpu_time(analyze_scheduled(sched, None), 32)
        print(f"  {heuristic:10s} {t * 1e3:8.3f} ms  ({t / t_ours:.2f}x ours)")

    print("\nverifying fused execution...")
    ref = make_store(prog)
    execute_naive(prog, ref)
    store, _ = run_program(prog, result.tree)
    assert np.allclose(store["u"], ref["u"])
    print("live-out mesh state matches the naive execution.")


if __name__ == "__main__":
    main()
