"""Optimizing an image-processing pipeline (Harris corner detection).

Shows what the paper's pass does on a realistic 11-stage pipeline:
the fusion clusters it finds, the per-tile footprints of the upwards
exposed data, the scratchpad buffers the fused intermediates occupy, and
the predicted execution times against the PPCG fusion heuristics on the
modeled 32-core CPU.

Run:  python examples/image_pipeline.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import CompileOptions
from repro.codegen import execute_naive, make_store, promoted_buffers, run_program
from repro.core import optimize
from repro.machine import analyze_optimized, analyze_scheduled, cpu_time
from repro.pipelines import harris
from repro.scheduler import MAXFUSE, MINFUSE, SMARTFUSE, schedule_program

SIZE = 256
TILES = (16, 64)


def main():
    prog = harris.build(SIZE)
    print(f"{prog.name}: {len(prog.statements)} stages, image {SIZE}x{SIZE}")

    result = optimize(prog, CompileOptions(target="cpu", tile_sizes=TILES))
    print(f"\nfusion clusters: {result.fusion_summary()}")
    print(f"compile time: {result.compile_seconds:.2f} s")

    print("\nper-tile scratch buffers of the fused intermediates:")
    for cluster, buffers in promoted_buffers(result).items():
        for b in buffers:
            print(
                f"  {b.tensor:10s} box {b.box_shape} "
                f"({b.box_elems * 8 / 1024:.1f} KiB, "
                f"box/exact = {b.over_approximation:.2f})"
            )

    print("\npredicted CPU time (32 threads):")
    ours = cpu_time(analyze_optimized(result), 32)
    print(f"  {'ours':10s} {ours * 1e3:8.3f} ms")
    for heuristic in (MINFUSE, SMARTFUSE, MAXFUSE):
        sched = schedule_program(prog, heuristic)
        t = cpu_time(analyze_scheduled(sched, TILES), 32)
        print(f"  {heuristic:10s} {t * 1e3:8.3f} ms  ({t / ours:.2f}x ours)")

    print("\nverifying the fused schedule on a small image...")
    small = harris.build(32)
    ref = make_store(small)
    execute_naive(small, ref)
    res_small = optimize(small, CompileOptions(target="cpu", tile_sizes=(8, 8)))
    store, _ = run_program(small, res_small.tree)
    out = small.liveout[0]
    assert np.allclose(store[out], ref[out])
    print("bit-identical to the naive execution.")


if __name__ == "__main__":
    main()
