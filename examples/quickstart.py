"""Quickstart: the paper's running example (Fig. 1) end to end.

Builds the quantise -> conv2d -> ReLU pipeline, runs the post-tiling
fusion pass, shows the schedule trees before and after, prints the
generated OpenMP and CUDA code, and verifies the fused execution against
the naive program order.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import CompileOptions
from repro.codegen import execute_naive, make_store, print_tree, run_program
from repro.core import optimize
from repro.pipelines import conv2d
from repro.scheduler import SMARTFUSE, schedule_program


def main():
    params = {"H": 12, "W": 12, "KH": 3, "KW": 3}
    prog = conv2d.build(params)
    print(f"program: {prog}")
    print(f"live-out tensors: {prog.liveout}; intermediates: {prog.intermediate_tensors()}")

    print("\n--- schedule tree after the conservative start-up fusion ---")
    sched = schedule_program(prog, SMARTFUSE)
    print(sched.tree.pretty())

    print("\n--- after post-tiling fusion (tile sizes 4x4) ---")
    result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
    print(result.tree.pretty())
    print(f"\nfusion result: {result.fusion_summary()}")
    print(f"compile time: {result.compile_seconds * 1e3:.1f} ms")

    print("\n--- generated OpenMP code ---")
    print(print_tree(result.tree, prog, style="openmp"))

    print("\n--- generated CUDA-flavoured code (gpu target) ---")
    gpu = optimize(prog, CompileOptions(target="gpu", tile_sizes=(4, 4)))
    print(print_tree(gpu.tree, prog, style="cuda"))

    print("\n--- executing both schedules ---")
    ref = make_store(prog)
    execute_naive(prog, ref)
    store, counts = run_program(prog, result.tree)
    ok = np.allclose(store["C"], ref["C"])
    print(f"fused result matches naive execution: {ok}")
    print(f"executed instances (recomputation included): {counts}")
    s0_domain = prog.statement("S0").domain.count_points(params)
    print(
        f"S0 recomputation from overlapped tiles: "
        f"{counts['S0']} executed vs {s0_domain} domain points"
    )
    assert ok


if __name__ == "__main__":
    main()
