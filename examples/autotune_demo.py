"""Tile-size auto-tuning (the strategy behind Table I's tile column).

PolyMage tunes tile sizes by trying {8, 16, ..., 512} per dimension; the
paper reuses those tuned sizes.  Because the pass only needs tile sizes
for the *live-out* space, the search stays 2-D no matter how deep the
pipeline is.  This demo tunes Unsharp Mask against the CPU model and
shows the landscape.

Run:  python examples/autotune_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import CompileOptions
from repro.pipelines import unsharp_mask
from repro.scheduler import autotune_tile_sizes

SIZE = 1024


def main():
    prog = unsharp_mask.build(SIZE)
    print(f"auto-tuning {prog.name} at {SIZE}x{SIZE} (modeled 32-core CPU)...")
    result = autotune_tile_sizes(prog, options=CompileOptions(target="cpu", mode="serial"), threads=32, candidates=(8, 16, 32, 64, 128, 256, 512))
    print(f"searched {len(result.evaluations)} tilings "
          f"in {result.tuning_seconds:.1f} s")
    print(f"best: {result.best_sizes} at {result.best_time * 1e3:.3f} ms")
    print("\ntop 5:")
    for sizes, t in result.top(5):
        print(f"  {str(sizes):12s} {t * 1e3:8.3f} ms")
    worst = max(result.evaluations.items(), key=lambda kv: kv[1])
    print(f"worst: {worst[0]} at {worst[1] * 1e3:.3f} ms "
          f"({worst[1] / result.best_time:.1f}x slower than best)")
    paper = tuple(unsharp_mask.TILE_SIZES)
    if paper in result.evaluations:
        t_paper = result.evaluations[paper]
        print(
            f"\nTable I used {paper} for this pipeline: "
            f"{t_paper * 1e3:.3f} ms here — within "
            f"{t_paper / result.best_time:.2f}x of the tuned optimum.  "
            "(The analytical model is nearly orientation-symmetric; the "
            "real machine's row-major locality is what makes the paper's "
            "wide-short orientation the physical winner.)"
        )


if __name__ == "__main__":
    main()
