"""Algorithm 3 in action: multiple live-out spaces and shared producers.

gemver has two live-out chains (x1 and w) that both read the rank-2
updated matrix A2.  Their needed subsets of A2 fully overlap, so fusing
A2 into either chain would recompute it — the paper's rule (Fig. 6)
forbids that, and A2 keeps a tiling schedule of its own.

We contrast this with a pipeline whose shared producer feeds *disjoint*
halves to its two consumers: there fusion is allowed on both sides and
the original space is skipped entirely.

Run:  python examples/multi_liveout.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import CompileOptions
from repro.codegen import execute_naive, make_store, run_program
from repro.core import optimize
from repro.ir import ProgramBuilder
from repro.pipelines import polybench


def build_disjoint_split(n: int = 32):
    """op0 writes T; op1 consumes rows [0, n/2), op2 rows [n/2, n)."""
    b = ProgramBuilder("split", params={})
    T = b.tensor("T", (n, n))
    U = b.tensor("U", (n // 2, n))
    V = b.tensor("V", (n // 2, n))
    i, j = b.iters("i", "j")
    b.assign("Sop0", (i, j), f"0 <= i < {n} and 0 <= j < {n}", T[i, j], 1.5)
    b.assign(
        "Sop1", (i, j), f"0 <= i < {n // 2} and 0 <= j < {n}", U[i, j], T[i, j] * 2.0
    )
    b.assign(
        "Sop2",
        (i, j),
        f"0 <= i < {n // 2} and 0 <= j < {n}",
        V[i, j],
        T[i + n // 2, j] * 3.0,
    )
    b.set_liveout("U", "V")
    return b.build()


def main():
    print("=== gemver: overlapping shared space (must NOT fuse) ===")
    prog = polybench.build_gemver(16)
    result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
    print(f"fusion clusters: {result.fusion_summary()}")
    assert ["Sa"] in result.fusion_summary(), "A2's update stays un-fused"

    ref = make_store(prog)
    execute_naive(prog, ref)
    store, _ = run_program(prog, result.tree)
    for t in prog.liveout:
        assert np.allclose(store[t], ref[t])
    print("both live-out tensors verified.\n")

    print("=== disjoint split: shared space fused into BOTH uses ===")
    split = build_disjoint_split(32)
    result = optimize(split, CompileOptions(target="cpu", tile_sizes=(8, 8)))
    print(f"fusion clusters: {result.fusion_summary()}")
    summary = result.fusion_summary()
    assert ["Sop0"] not in summary, "op0 fused into its uses (Fig. 6b)"

    ref = make_store(split)
    execute_naive(split, ref)
    store, counts = run_program(split, result.tree)
    for t in split.liveout:
        assert np.allclose(store[t], ref[t])
    print(f"executed instances: {counts}")
    print(
        "op0 ran exactly its domain size "
        f"({counts['Sop0']} instances): disjoint subsets, no redundancy."
    )


if __name__ == "__main__":
    main()
