"""ResNet-50 on the DaVinci-style NPU model (Table III's experiment).

Lowers a conv+batchnorm operator pair through the polyhedral pass (the
akg integration path of Section V-A), then evaluates the whole ResNet-50
layer table on the NPU model, fused vs. unfused.

Run:  python examples/npu_resnet.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import CompileOptions
from repro.codegen import execute_naive, make_store, run_program
from repro.core import optimize
from repro.machine import conv_bn_time, network_time
from repro.pipelines import resnet


def main():
    print("=== lowering one conv+bn operator pair through the pass ===")
    pair = resnet.build_operator_pair(16, 16)
    result = optimize(pair, CompileOptions(target="npu", tile_sizes=(4, 4)))
    print(f"fusion result: {result.fusion_summary()}")
    ref = make_store(pair)
    execute_naive(pair, ref)
    store, _ = run_program(pair, result.tree)
    assert np.allclose(store["Y"], ref["Y"])
    print("fused operator pair verified against naive execution.\n")

    print("=== ResNet-50 on the modeled Ascend 910 ===")
    layers = resnet.resnet50_layers()
    print(f"{len(layers)} convolutions, batch {resnet.BATCH}")
    print(f"{'layer':16s} {'unfused ms':>11s} {'fused ms':>9s} {'speedup':>8s}")
    shown = 0
    total_f = total_u = 0.0
    for layer in layers:
        f = conv_bn_time(layer, fused=True)
        u = conv_bn_time(layer, fused=False)
        total_f += f
        total_u += u
        if shown < 8 or layer is layers[-1]:
            print(f"{layer.name:16s} {u * 1e3:11.3f} {f * 1e3:9.3f} {u / f:7.2f}x")
            shown += 1
    print("  ...")
    print(
        f"{'ALL conv+bn':16s} {total_u * 1e3:11.2f} {total_f * 1e3:9.2f} "
        f"{total_u / total_f:7.2f}x   (paper: 1.72x)"
    )
    other = 0.0235
    tu = network_time(layers, False, other)
    tf = network_time(layers, True, other)
    print(
        f"{'entire workload':16s} {tu * 1e3:11.2f} {tf * 1e3:9.2f} "
        f"{tu / tf:7.2f}x   (paper: 1.16x)"
    )


if __name__ == "__main__":
    main()
