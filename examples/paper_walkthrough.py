"""A numerical walkthrough of Section III of the paper.

Reproduces, step by step and with the paper's exact numbers (H = W = 6,
KH = KW = 3, T2 = T3 = 2), the derivation that runs through Sections
III-A to III-C: the tiling schedule, the upwards-exposed data, footprint
relation (4) on the blue/red tiles, write-access relation (5), and the
extension schedule (6) that tiles the quantisation space.

Run:  python examples/paper_walkthrough.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (
    TILE_TUPLE,
    construct_tile_shapes,
    exposed_tensors,
    intermediate_groups_of,
    liveout_groups,
    tile_footprint,
)
from repro.pipelines import conv2d
from repro.scheduler import SMARTFUSE, schedule_program

PARAMS = {"H": 6, "W": 6, "KH": 3, "KW": 3}


def banner(title):
    print()
    print(f"--- {title} ---")


def main():
    prog = conv2d.build(PARAMS)
    print("The 2D convolution of Fig. 1(a), H = W = 6, KH = KW = 3.")

    banner("conservative start-up fusion (Section II)")
    sched = schedule_program(prog, SMARTFUSE)
    for g in sched.groups:
        print(f"  {g.name}: {{{', '.join(g.statements)}}}  "
              f"coincident={[int(c) for c in g.coincident]}")
    print("  -> the paper's ({S0}, {S1, S2, S3}): quantisation and reduction spaces")

    L = liveout_groups(prog, sched.groups)[0]
    inters = intermediate_groups_of(prog, L, sched.groups)

    banner("upwards-exposed data of the reduction space (Section III-A)")
    exposed = exposed_tensors(prog, L, sched.groups)
    print(f"  tensors read by {{{', '.join(L.statements)}}} but defined elsewhere: {exposed}")

    banner("footprint relation (4), tile sizes T2 = T3 = 2")
    fp = tile_footprint(prog, L, (2, 2), exposed)
    m = fp[(TILE_TUPLE, "A")]
    print(f"  {m}")

    banner("the paper's blue tile (o0, o1) = (1, 0): origin (2, 0)")
    blue = m.fix_params(PARAMS).image_of_point({f"{L.name}_o0": 2, f"{L.name}_o1": 0})
    box = blue.bounding_box()
    dims = list(blue.space.dims)
    print(f"  memory footprint: {blue.count_points()} elements of A, "
          f"box {dims[0]} in {box[dims[0]]}, {dims[1]} in {box[dims[1]]}")
    print("  paper: { A[h', w'] : 2 <= h' <= 5 and 0 <= w' <= 3 }  (16 points)")

    banner("the red tile (o0, o1) = (1, 1): origin (2, 2), and the overlap")
    red = m.fix_params(PARAMS).image_of_point({f"{L.name}_o0": 2, f"{L.name}_o1": 2})
    inter = blue.intersect(red)
    print(f"  red footprint: {red.count_points()} elements; "
          f"blue ∩ red = {inter.count_points()} elements (the interleaved region)")

    banner("extension schedule (6) = (4) composed with reversed writes (5)")
    mixed = construct_tile_shapes(prog, L, inters, (2, 2))
    ext = mixed.entries[1]
    print(f"  {ext.relation}")
    blue_inst = ext.instances_for_tile(
        "S0", {f"{L.name}_o0": 2, f"{L.name}_o1": 0}, PARAMS
    )
    print(f"  blue tile pulls {blue_inst.count_points()} instances of S0")
    print("  paper: { S0[h, w] : 2 <= h <= 5 and 0 <= w <= 3 }  (16 instances)")
    red_inst = ext.instances_for_tile(
        "S0", {f"{L.name}_o0": 2, f"{L.name}_o1": 2}, PARAMS
    )
    overlap = blue_inst.intersect(red_inst)
    print(f"  tile shapes overlap by {overlap.count_points()} instances — "
          "'arbitrary' (overlapped) tile shapes without rescheduling")


if __name__ == "__main__":
    main()
