"""Ensure ``src`` is importable even without an installed distribution."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
